package replay

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"overlapsim/internal/machine"
	"overlapsim/internal/trace"
	"overlapsim/internal/units"
)

// ringSet builds an eager ring: every iteration each rank computes, sends
// to its right neighbour and receives from its left. Eager sends do not
// block, so the uniform order cannot deadlock.
func ringSet(n, iters int, size units.Bytes) *trace.Set {
	ts := trace.NewSet("ring", "original", n, 1000)
	for r := 0; r < n; r++ {
		next, prev := (r+1)%n, (r+n-1)%n
		for it := 0; it < iters; it++ {
			ts.Traces[r].Append(
				trace.Burst(int64(500+100*(r%3))),
				trace.Send(next, it, size),
				trace.Recv(prev, it, size),
			)
		}
	}
	return ts
}

// rendezvousPairs exchanges large (rendezvous) messages pairwise with
// even/odd ordering so blocking sends cannot deadlock, plus a blocking
// send one rank further every other iteration to cross shard boundaries.
func rendezvousPairs(n, iters int, size units.Bytes) *trace.Set {
	ts := trace.NewSet("rdv", "original", n, 1000)
	for r := 0; r < n; r++ {
		peer := r ^ 1 // pairwise partner
		if peer >= n {
			peer = r
		}
		for it := 0; it < iters; it++ {
			tr := &ts.Traces[r]
			tr.Append(trace.Burst(int64(300 * (1 + r%2))))
			if peer == r {
				continue // odd rank count: the last rank only computes
			}
			if r%2 == 0 {
				tr.Append(trace.Send(peer, it, size), trace.Recv(peer, it, size))
			} else {
				tr.Append(trace.Recv(peer, it, size), trace.Send(peer, it, size))
			}
		}
	}
	return ts
}

// haloSet overlaps computation with request-based halo exchange: IRecv from
// both neighbours, ISend to both, compute, then wait on all four requests.
// Sizes alternate across the eager threshold so both protocols appear.
func haloSet(n, iters int) *trace.Set {
	ts := trace.NewSet("halo", "original", n, 1000)
	for r := 0; r < n; r++ {
		next, prev := (r+1)%n, (r+n-1)%n
		for it := 0; it < iters; it++ {
			size := units.Bytes(1000)
			if it%2 == 1 {
				size = 64 * units.KB // above testConfig's eager threshold
			}
			base := it * 10
			ts.Traces[r].Append(
				trace.IRecv(prev, it, size, base+1),
				trace.IRecv(next, 1000+it, size, base+2),
				trace.ISend(next, it, size, base+3),
				trace.ISend(prev, 1000+it, size, base+4),
				trace.Burst(int64(2000+37*r)),
				trace.Wait(base+1), trace.Wait(base+2),
				trace.Wait(base+3), trace.Wait(base+4),
				trace.Marker("iter"),
			)
		}
	}
	return ts
}

// withWorkers forces des.Windows onto its spawning path (see the des
// package tests): without it a single-CPU machine runs every shard inline
// and the cross-shard synchronization goes untested.
func withWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// normalizeWindows checks the parallel run actually engaged (or not, per
// want) and then zeroes the round count so the remainder of the result can
// be compared structurally against the sequential run.
func normalizeWindows(t *testing.T, res *Result, wantParallel bool) {
	t.Helper()
	if wantParallel && res.Windows == 0 {
		t.Fatal("parallel engine did not engage (Windows == 0)")
	}
	if !wantParallel && res.Windows != 0 {
		t.Fatalf("parallel engine engaged unexpectedly (Windows == %d)", res.Windows)
	}
	res.Windows = 0
}

// TestParallelMatchesSequential is the core identity check: for workloads
// covering eager, rendezvous, request-based and node-local transfers, the
// parallel engine must reproduce the sequential result exactly — every
// timeline interval, rank breakdown, network stat and the step count.
func TestParallelMatchesSequential(t *testing.T) {
	withWorkers(t)
	type tc struct {
		name string
		ts   *trace.Set
		cfg  machine.Config
	}
	local := testConfig()
	local.RanksPerNode = 4
	local.LocalLatency = 2 * units.Microsecond
	overhead := testConfig()
	overhead.CPUOverhead = 500 * units.Nanosecond
	cases := []tc{
		{"eager-ring-16", ringSet(16, 6, 2000), testConfig()},
		{"eager-ring-17-uneven-shards", ringSet(17, 5, 1500), testConfig()},
		{"rendezvous-pairs-16", rendezvousPairs(16, 4, 64*units.KB), testConfig()},
		{"rendezvous-pairs-19-odd", rendezvousPairs(19, 4, 64*units.KB), testConfig()},
		{"halo-mixed-protocol-16", haloSet(16, 4), testConfig()},
		{"local-and-remote-16", ringSet(16, 6, 2000), local},
		{"cpu-overhead-16", haloSet(16, 3), overhead},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := Simulate(c.ts, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 3, 4, 16} {
				got, err := SimulatePar(c.ts, c.cfg, par)
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				normalizeWindows(t, got, true)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("par=%d result diverges from sequential\ngot:  total=%v steps=%d net=%+v\nwant: total=%v steps=%d net=%+v",
						par, got.Total, got.Steps, got.Network, want.Total, want.Steps, want.Network)
				}
			}
		})
	}
}

// TestParallelPropertyMatchesSequential fuzzes the identity on random
// collective-free workloads over 16..24 ranks with random protocols.
func TestParallelPropertyMatchesSequential(t *testing.T) {
	withWorkers(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(9)
		ts := trace.NewSet("par-prop", "original", n, units.MIPS(rng.Intn(2000)+100))
		for p := 0; p < rng.Intn(60)+10; p++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := units.Bytes(rng.Intn(1 << 17)) // both sides of the eager threshold
			tag := p
			s, d := &ts.Traces[src], &ts.Traces[dst]
			s.Append(trace.Burst(int64(rng.Intn(5000))))
			d.Append(trace.Burst(int64(rng.Intn(5000))))
			if rng.Intn(2) == 0 {
				req := 5000 + p
				s.Append(trace.ISend(dst, tag, size, req), trace.Burst(int64(rng.Intn(2000))), trace.Wait(req))
			} else {
				s.Append(trace.Send(dst, tag, size))
			}
			if rng.Intn(2) == 0 {
				req := 9000 + p
				d.Append(trace.IRecv(src, tag, size, req), trace.Burst(int64(rng.Intn(2000))), trace.Wait(req))
			} else {
				d.Append(trace.Recv(src, tag, size))
			}
		}
		cfg := testConfig()
		if rng.Intn(2) == 0 {
			cfg.RanksPerNode = 1 + rng.Intn(4)
		}
		want, err := Simulate(ts, cfg)
		if err != nil {
			// Random blocking rendezvous orders can deadlock; the parallel
			// engine must agree that they do.
			_, perr := SimulatePar(ts, cfg, 4)
			return perr != nil
		}
		got, err := SimulatePar(ts, cfg, 2+rng.Intn(5))
		if err != nil {
			return false
		}
		got.Windows = 0
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestParallelFallsBackWhenIneligible pins every eligibility condition:
// each ineligible run must report Windows == 0 and still match sequential.
func TestParallelFallsBackWhenIneligible(t *testing.T) {
	eligible := ringSet(16, 3, 2000)
	withColl := ringSet(16, 3, 2000)
	for r := range withColl.Traces {
		withColl.Traces[r].Append(trace.Global(trace.Barrier, 0, 0))
	}
	buses := testConfig()
	buses.Buses = 8
	links := testConfig()
	links.InLinks, links.OutLinks = 2, 2
	zeroLat := testConfig()
	zeroLat.Latency = 0
	cases := []struct {
		name string
		ts   *trace.Set
		cfg  machine.Config
		par  int
	}{
		{"par-below-2", eligible, testConfig(), 1},
		{"below-rank-threshold", ringSet(8, 3, 2000), testConfig(), 4},
		{"collectives", withColl, testConfig(), 4},
		{"buses", eligible, buses, 4},
		{"links", eligible, links, 4},
		{"zero-latency", eligible, zeroLat, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := Simulate(c.ts, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SimulatePar(c.ts, c.cfg, c.par)
			if err != nil {
				t.Fatal(err)
			}
			normalizeWindows(t, got, false)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("fallback result diverges from sequential")
			}
		})
	}
}

// TestParallelThresholdOverride checks ParThreshold opens the parallel
// engine to small runs (the batch benches and fuzzers rely on this).
func TestParallelThresholdOverride(t *testing.T) {
	ts := ringSet(4, 4, 2000)
	want, err := Simulate(ts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplayer()
	r.Parallel = 2
	r.ParThreshold = 2
	got, err := r.Simulate(ts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	normalizeWindows(t, got, true)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("threshold-overridden parallel run diverges from sequential")
	}
}

// TestParallelDeadlockDetected: an unmatched receive must surface as the
// same deadlock error the sequential engine reports.
func TestParallelDeadlockDetected(t *testing.T) {
	withWorkers(t)
	ts := ringSet(16, 2, 2000)
	ts.Traces[5].Append(trace.Recv(4, 999, 100)) // never sent
	if _, err := Simulate(ts, testConfig()); err == nil {
		t.Fatal("sequential replay missed the deadlock")
	}
	_, err := SimulatePar(ts, testConfig(), 4)
	if err == nil {
		t.Fatal("parallel replay missed the deadlock")
	}
}

// TestParallelReplayerReuse interleaves parallel and sequential runs on one
// replayer: recycled scratch state from one mode must not leak into the
// other.
func TestParallelReplayerReuse(t *testing.T) {
	withWorkers(t)
	r := NewReplayer()
	ts := haloSet(16, 3)
	cfg := testConfig()
	want, err := Simulate(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.Parallel = 4
		got, err := r.Simulate(ts, cfg)
		if err != nil {
			t.Fatalf("round %d parallel: %v", i, err)
		}
		normalizeWindows(t, got, true)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d parallel diverges", i)
		}
		r.Parallel = 0
		got, err = r.Simulate(ts, cfg)
		if err != nil {
			t.Fatalf("round %d sequential: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d sequential-after-parallel diverges", i)
		}
	}
}

package replay

import (
	"fmt"
	"runtime"
	"sync"

	"overlapsim/internal/des"
	"overlapsim/internal/trace"
	"overlapsim/internal/units"
	"weak"
)

// This file implements the conservative-window parallel engine: one large
// replay's ranks are partitioned into contiguous shards, each owning a
// private DES engine, advancing concurrently between barriers one
// lookahead apart (des.Windows). The lookahead is the minimum configured
// link latency, so any message matched in the current window delivers at
// or past the next barrier — results are identical to sequential replay,
// event for event:
//
//   - A transfer's start time is derived from the recorded post instants
//     (sendAt/recvAt), not from the matching shard's clock, so wire and
//     delivery events carry the exact timestamps the sequential engine
//     would assign.
//   - Delivery is split per endpoint (evDeliverDst/evDeliverSrc) when the
//     two ranks live on different shards; each side's flags and waiter
//     lists are written only by its own shard. The extra event per split
//     is subtracted from the reported step count.
//   - Matching state (channel FIFOs, the transfer free list) is shared
//     under one lock. FIFO pairing stays deterministic regardless of shard
//     interleaving because a directed channel's sends all come from one
//     rank and its receives from one rank, each replayed in program order:
//     the k-th send always pairs with the k-th receive.
//
// Eligibility (parallelPlan) requires a contention-free platform (no
// buses, no per-node link limits): global resource arbitration orders
// transfers by match discovery time, which shard interleaving would
// perturb. Collectives are excluded for the same reason — their release
// time (last arrival plus cost) can undercut another shard's barrier.

// DefaultParThreshold is the rank count below which the parallel engine
// declines to engage: window synchronization costs more than the
// concurrency wins on small replays.
const DefaultParThreshold = 16

// parState is the reusable shard machinery hung off a root Replayer. Each
// shard executes through a view — a Replayer whose par/shard identify it,
// whose engine and stats are private, and whose matching maps alias the
// root's.
type parState struct {
	root    *Replayer
	views   []*Replayer
	engines []*des.Engine
	win     *des.Windows
	mu      sync.Mutex // guards matching state and transfer fields across shards
	serial  bool       // shards run inline on one goroutine; skip the lock
	ranks   []int32    // rank -> shard (contiguous blocks)
	live    []*transfer
}

func (ps *parState) shardOf(rank int) int { return int(ps.ranks[rank]) }

// lock/unlock guard the shared matching state (channel FIFOs, the transfer
// free list, dirtyQ, and per-transfer matching fields). When the window
// coordinator runs every shard inline (serial), the whole run executes on
// one goroutine and the lock is elided.
func (ps *parState) lock() {
	if !ps.serial {
		ps.mu.Lock()
	}
}

func (ps *parState) unlock() {
	if !ps.serial {
		ps.mu.Unlock()
	}
}

// parallelPlan decides whether the prepared run (reset must have been
// called) is eligible for the parallel engine and returns the shard count
// and lookahead when it is.
func (s *Replayer) parallelPlan(ts *trace.Set) (int, units.Duration, bool) {
	if s.Parallel < 2 {
		return 0, 0, false
	}
	thr := s.ParThreshold
	if thr <= 0 {
		thr = DefaultParThreshold
	}
	if s.nprocs < thr {
		return 0, 0, false
	}
	if s.cfg.Buses != 0 || s.cfg.InLinks != 0 || s.cfg.OutLinks != 0 {
		return 0, 0, false // resource arbitration is order-dependent
	}
	la := s.cfg.Latency
	if s.cfg.RanksPerNode > 1 && s.cfg.LocalLatency < la {
		// Same-node transfers exist only when nodes hold multiple ranks;
		// then the local latency also bounds cause-to-effect distance.
		la = s.cfg.LocalLatency
	}
	if la <= 0 {
		return 0, 0, false
	}
	if s.hasCollectives(ts) {
		return 0, 0, false
	}
	shards := s.Parallel
	if shards > s.nprocs {
		shards = s.nprocs
	}
	return shards, la, true
}

// hasCollectives scans the trace set once and memoizes by set identity —
// the batch path replays one set across many platforms.
func (s *Replayer) hasCollectives(ts *trace.Set) bool {
	if s.collScanned.Value() == ts {
		return s.collFound
	}
	found := false
scan:
	for i := range ts.Traces {
		for _, r := range ts.Traces[i].Records {
			if r.Kind == trace.KindCollective {
				found = true
				break scan
			}
		}
	}
	s.collScanned, s.collFound = weak.Make(ts), found
	return found
}

// runParallel executes the prepared run across the given number of shards.
// It leaves merged stats, per-rank finish state, the model error (if any)
// and the corrected step count on the root, mirroring what a sequential
// run leaves behind.
func (s *Replayer) runParallel(shards int, lookahead units.Duration) (int64, error) {
	ps := s.scratch
	if ps == nil || len(ps.views) != shards {
		ps = &parState{
			root:    s,
			views:   make([]*Replayer, shards),
			engines: make([]*des.Engine, shards),
		}
		for i := range ps.views {
			ps.engines[i] = des.New()
			ps.views[i] = &Replayer{eng: ps.engines[i], par: ps, shard: i}
		}
		ps.win = des.NewWindows(ps.engines)
		s.scratch = ps
	}
	// One decision per run, shared with the window coordinator: with a
	// single execution slot the shards run inline in shard order and the
	// matching lock is pure overhead.
	ps.serial = runtime.GOMAXPROCS(0) < 2
	ps.win.Serial = ps.serial
	n := s.nprocs
	if cap(ps.ranks) < n {
		ps.ranks = make([]int32, n)
	} else {
		ps.ranks = ps.ranks[:n]
	}
	q, rem := n/shards, n%shards
	rank := 0
	for sh := 0; sh < shards; sh++ {
		c := q
		if sh < rem {
			c++
		}
		for j := 0; j < c; j++ {
			ps.ranks[rank] = int32(sh)
			rank++
		}
	}
	for _, v := range ps.views {
		v.eng.Reset()
		v.cfg, v.mips = s.cfg, s.mips
		v.stats = NetworkStats{}
		v.err = nil
		v.extraDeliver = 0
		v.skippedWire = 0
		v.nprocs = n
		v.chans = s.chans
		v.finish, v.done = s.finish, s.done
	}
	for rk, p := range s.procs[:n] {
		v := ps.views[ps.ranks[rk]]
		p.sim = v
		v.eng.ScheduleEvent(0, p, evAdvance)
	}
	defer func() {
		for _, p := range s.procs[:n] {
			p.sim = s
		}
	}()

	windows, err := ps.win.Run(lookahead)

	// Sweep every transfer the run touched back to the root free list:
	// mid-run recycling is off under the parallel engine. Halves stranded
	// in channel queues are safe to recycle — the next reset clears the
	// queues before the free list is drawn from.
	for i, t := range ps.live {
		s.releaseTransfer(t)
		ps.live[i] = nil
	}
	ps.live = ps.live[:0]
	if err != nil {
		return 0, fmt.Errorf("replay: %w", err)
	}

	var steps, extra, skipped int64
	merged := NetworkStats{}
	for _, v := range ps.views {
		steps += v.eng.Steps()
		extra += v.extraDeliver
		skipped += v.skippedWire
		merged.Transfers += v.stats.Transfers
		merged.LocalTransfers += v.stats.LocalTransfers
		merged.Bytes += v.stats.Bytes
		merged.BusTime += v.stats.BusTime
		merged.Collectives += v.stats.Collectives
		if v.stats.MaxPending > merged.MaxPending {
			merged.MaxPending = v.stats.MaxPending
		}
		if s.err == nil && v.err != nil {
			s.err = v.err // deterministic: lowest shard index wins
		}
	}
	s.stats = merged
	s.ranSteps = steps - extra + skipped
	return windows, nil
}

// startPar routes a claimed transfer into the network under the parallel
// engine; s is the shard that claimed it (claimStart, under the matching
// lock — this routing runs after the lock is released). The start time
// base is sendAt for eager sends and max(sendAt, recvAt) for rendezvous —
// at least the claiming shard's Now, itself at least the window start W,
// so every event scheduled from here lands at or past the barrier
// W+lookahead.
func (s *Replayer) startPar(t *transfer) {
	base := t.sendAt
	if !t.eager && t.recvAt > base {
		base = t.recvAt
	}
	if t.local {
		at := base.Add(s.cfg.LocalLatency + s.cfg.LocalTransferTime(t.size))
		s.scheduleDelivery(t, at)
		return
	}
	wire := s.cfg.TransferTime(t.size)
	s.stats.BusTime += wire
	if s.stats.MaxPending < 1 {
		// The sequential contention-free peak is exactly 1 whenever any
		// remote transfer exists: maybeStart enqueues one transfer and
		// drainPending immediately starts it.
		s.stats.MaxPending = 1
	}
	// No resources are held here, so the wire event the sequential engine
	// uses to release them carries no behaviour: fold the wire time into
	// the delivery instant and count the elided step for parity.
	s.skippedWire++
	s.scheduleDelivery(t, base.Add(wire).Add(s.cfg.Latency))
}

// scheduleDelivery fans the delivery at instant at out to the transfer's
// endpoint shards: one combined event when both ranks share a shard,
// otherwise one per side. The extra event of a split is subtracted from
// the reported step count so parallel and sequential replays agree.
func (s *Replayer) scheduleDelivery(t *transfer, at units.Time) {
	ps := s.par
	srcSh, dstSh := ps.shardOf(t.src), ps.shardOf(t.dst)
	if srcSh == dstSh {
		// The posting shard owns both endpoints (it posted one of them).
		s.eng.ScheduleEvent(at, t, evDeliver)
		return
	}
	s.extraDeliver++
	if dstSh == s.shard {
		s.eng.ScheduleEvent(at, t, evDeliverDst)
	} else {
		ps.win.Post(dstSh, at, t, evDeliverDst)
	}
	if srcSh == s.shard {
		s.eng.ScheduleEvent(at, t, evDeliverSrc)
	} else {
		ps.win.Post(srcSh, at, t, evDeliverSrc)
	}
}

// deliverDst completes the receiver side of a split delivery in the
// receiver's shard: delivery stats are counted here (once per transfer).
func (s *Replayer) deliverDst(t *transfer) {
	t.deliveredDst = true
	s.stats.Transfers++
	s.stats.Bytes += t.size
	if t.local {
		s.stats.LocalTransfers++
	}
	for _, p := range t.waiters {
		p.advance()
	}
	t.waiters = t.waiters[:0]
}

// deliverSrc completes the sender side of a split delivery in the
// sender's shard.
func (s *Replayer) deliverSrc(t *transfer) {
	t.deliveredSrc = true
	if t.sender != nil {
		p := t.sender
		t.sender = nil
		p.advance()
	}
	for _, p := range t.srcWaiters {
		p.advance()
	}
	t.srcWaiters = t.srcWaiters[:0]
}

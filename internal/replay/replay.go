package replay

import (
	"fmt"
	"sync"

	"overlapsim/internal/des"
	"overlapsim/internal/machine"
	"overlapsim/internal/timeline"
	"overlapsim/internal/trace"
	"overlapsim/internal/units"
	"weak"
)

// NetworkStats aggregates what the network did during a replay.
type NetworkStats struct {
	Transfers      int            // point-to-point transfers completed
	LocalTransfers int            // subset that stayed within a node
	Bytes          units.Bytes    // total point-to-point payload
	BusTime        units.Duration // total wire occupancy summed over buses
	Collectives    int            // collective operations completed
	MaxPending     int            // peak transfers queued for resources
}

// BusUtilization returns the mean fraction of the configured buses kept
// busy over the run; 0 when the platform has unlimited buses.
func (n NetworkStats) BusUtilization(buses int, total units.Time) float64 {
	if buses <= 0 || total <= 0 {
		return 0
	}
	return n.BusTime.Seconds() / (float64(buses) * units.Duration(total).Seconds())
}

// RankBreakdown is the per-rank time accounting of a replay.
type RankBreakdown struct {
	Rank       int
	Finish     units.Time
	Compute    units.Duration
	Overhead   units.Duration
	Send       units.Duration
	Recv       units.Duration
	Wait       units.Duration
	Collective units.Duration
}

// Blocked sums all communication stall time.
func (r RankBreakdown) Blocked() units.Duration {
	return r.Send + r.Recv + r.Wait + r.Collective
}

// Result is the outcome of replaying one trace set.
type Result struct {
	Total     units.Time // simulated runtime (max rank finish)
	Timelines *timeline.Set
	Network   NetworkStats
	Steps     int64 // DES events executed
	Windows   int64 // conservative-window rounds (0 when run sequentially)
}

// Ranks derives the per-rank time accounting from the timelines. It is a
// method rather than a stored field so the warm Simulate path only pays
// for breakdowns when a caller wants them; each call allocates a fresh
// slice the caller owns.
func (r *Result) Ranks() []RankBreakdown {
	if r.Timelines == nil {
		return nil
	}
	out := make([]RankBreakdown, 0, len(r.Timelines.Lines))
	for i := range r.Timelines.Lines {
		l := &r.Timelines.Lines[i]
		out = append(out, RankBreakdown{
			Rank:       l.Rank,
			Finish:     l.Finish,
			Compute:    l.TimeIn(timeline.Compute),
			Overhead:   l.TimeIn(timeline.Overhead),
			Send:       l.TimeIn(timeline.SendBlocked),
			Recv:       l.TimeIn(timeline.RecvBlocked),
			Wait:       l.TimeIn(timeline.WaitBlocked),
			Collective: l.TimeIn(timeline.CollBlocked),
		})
	}
	return out
}

// MaxBlockedFraction returns the largest per-rank blocked-time share, a
// platform-dependent measure of how communication-bound the execution is.
// Interval durations are integers, so summing a line's blocked intervals
// in one pass equals summing its RankBreakdown fields exactly.
func (r *Result) MaxBlockedFraction() float64 {
	if r.Total <= 0 || r.Timelines == nil {
		return 0
	}
	var worst float64
	for i := range r.Timelines.Lines {
		f := r.Timelines.Lines[i].BlockedTime().Seconds() / units.Duration(r.Total).Seconds()
		if f > worst {
			worst = f
		}
	}
	return worst
}

// MeanBlockedFraction returns the mean per-rank blocked-time share.
func (r *Result) MeanBlockedFraction() float64 {
	if r.Total <= 0 || r.Timelines == nil || len(r.Timelines.Lines) == 0 {
		return 0
	}
	var sum float64
	for i := range r.Timelines.Lines {
		sum += r.Timelines.Lines[i].BlockedTime().Seconds() / units.Duration(r.Total).Seconds()
	}
	return sum / float64(len(r.Timelines.Lines))
}

// replayerPool recycles Replayers across Simulate calls, so the package-
// level entry point gets warm free lists for free — in a sweep every worker
// reuses scratch state from earlier grid points.
var replayerPool = sync.Pool{New: func() any { return NewReplayer() }}

// Simulate replays the trace set on the platform. The platform is auto-
// sized to the rank count when its capacity is too small; MIPS 0 defers to
// the rate recorded in the trace. Simulate is a pure function of its
// arguments; internally it draws a pooled Replayer, so repeated calls do
// not pay the scratch-allocation cost of a cold replayer.
func Simulate(ts *trace.Set, cfg machine.Config) (*Result, error) {
	return SimulatePar(ts, cfg, 0)
}

// SimulatePar is Simulate with the conservative-window parallel engine
// enabled at the given width (see Replayer.Parallel). The result is
// identical to Simulate's; par <= 1 runs sequentially.
func SimulatePar(ts *trace.Set, cfg machine.Config, par int) (*Result, error) {
	r := replayerPool.Get().(*Replayer)
	r.Parallel = par
	res, err := r.Simulate(ts, cfg)
	r.Parallel = 0
	replayerPool.Put(r)
	return res, err
}

// SimulateBatch runs one pooled warm Replayer over many platform configs
// for the same trace set; see Replayer.SimulateBatch. par enables the
// parallel engine per point, exactly as in SimulatePar.
func SimulateBatch(ts *trace.Set, cfgs []machine.Config, out []Summary, par int) (int, error) {
	r := replayerPool.Get().(*Replayer)
	r.Parallel = par
	n, err := r.SimulateBatch(ts, cfgs, out)
	r.Parallel = 0
	replayerPool.Put(r)
	return n, err
}

// Event kinds of the replay model. A proc only ever receives evAdvance;
// transfers receive the network-phase kinds. The split delivery kinds
// exist only under the parallel engine, where the sender's and receiver's
// ranks may live on different shards: each side completes in its own
// shard at the same simulated instant.
const (
	evAdvance    des.Kind = iota // proc: resume the rank's state machine
	evDeliver                    // transfer: delivery completes (both sides)
	evWireDone                   // transfer: wire occupancy ends, resources free
	evDeliverDst                 // transfer: receiver-side delivery (parallel)
	evDeliverSrc                 // transfer: sender-side delivery (parallel)
)

// channelKey identifies a directed message channel for FIFO matching.
type channelKey struct {
	src, dst, tag int
}

// chanPair holds the two FIFOs of unmatched transfer halves for one
// directed channel: sends awaiting a receive and receives awaiting a send
// (at most one is non-empty). Keeping both under one map entry means each
// post pays a single hash lookup. The dirty flag marks pairs pushed to
// during the current run; reset clears only those instead of walking every
// channel ever seen.
type chanPair struct {
	send, recv chanQueue
	dirty      bool
}

// reset drops any leftover halves (an aborted run) and rewinds both queues.
func (pr *chanPair) reset() {
	pr.send.reset()
	pr.recv.reset()
	pr.dirty = false
}

// chanQueue is a FIFO of unmatched transfer halves for one direction of a
// channel. Popped slots are nilled (no retention) and the backing array is
// rewound whenever the queue drains, so steady-state matching never
// allocates.
type chanQueue struct {
	items []*transfer
	head  int
}

func (q *chanQueue) push(t *transfer) { q.items = append(q.items, t) }

func (q *chanQueue) empty() bool { return q.head == len(q.items) }

func (q *chanQueue) pop() *transfer {
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return t
}

// reset drops any leftover halves (an aborted run) and rewinds the queue.
func (q *chanQueue) reset() {
	clear(q.items)
	q.items = q.items[:0]
	q.head = 0
}

// transfer is one point-to-point message moving through the network model.
// Before matching, the object represents whichever half was posted first.
// Transfers are recycled through the replayer's free list: refs counts the
// request-table references (ISend/IRecv entries not yet consumed by Wait),
// and the object returns to the pool once delivered, fully matched, and
// unreferenced.
type transfer struct {
	sim           *Replayer
	src, dst, tag int
	size          units.Bytes
	local         bool
	eager         bool

	sendPosted, recvPosted bool
	started                bool
	// Delivery is tracked per side: the sender's rank reads deliveredSrc,
	// the receiver's reads deliveredDst. Sequential replay sets both at the
	// same instant (one flag split in two); the parallel engine sets each
	// from its own shard's delivery event, so neither side reads state the
	// other shard writes.
	deliveredSrc, deliveredDst bool

	// sendAt/recvAt record when each half was posted (the poster's local
	// clock). The transfer's start time is sendAt for eager sends and
	// max(sendAt, recvAt) for rendezvous — under the parallel engine the
	// matching shard's own clock may lag the true start time, so it must
	// be derived from these rather than from Now.
	sendAt, recvAt units.Time

	refs       int     // live request-table references (sequential only)
	sender     *proc   // blocked rendezvous sender, resumed at delivery
	waiters    []*proc // receiver-side procs blocked on delivery
	srcWaiters []*proc // sender-side procs blocked on delivery (parallel)
}

// HandleEvent dispatches the transfer's typed events.
func (t *transfer) HandleEvent(k des.Kind) {
	switch k {
	case evDeliver:
		t.sim.deliver(t)
	case evWireDone:
		t.sim.wireDone(t)
	case evDeliverDst:
		par := t.sim.par
		par.views[par.shardOf(t.dst)].deliverDst(t)
	case evDeliverSrc:
		par := t.sim.par
		par.views[par.shardOf(t.src)].deliverSrc(t)
	default:
		t.sim.fail(fmt.Errorf("replay: transfer %d->%d received unknown event kind %d", t.src, t.dst, k))
	}
}

// collSlot synchronizes one collective operation across ranks. Ranks find
// their slot by their per-rank collective counter; the trace validator
// guarantees all ranks agree on the sequence. Slots are pooled.
type collSlot struct {
	idx     int
	rec     trace.Record
	arrived int
	procs   []*proc
}

// Replayer is a reusable trace replayer. It owns all replay scratch state —
// the DES engine and its queue, rank state machines, channel FIFOs, the
// transfer free list, collective slots — and recycles everything across
// Simulate calls, so a warm replayer's event loop runs without heap
// allocation. The zero value is not usable; create replayers with
// NewReplayer. A Replayer must not be used concurrently; the package-level
// Simulate draws from an internal pool and is safe for concurrent use.
type Replayer struct {
	// Parallel enables the conservative-window parallel engine: ranks are
	// partitioned across min(Parallel, nranks) shards that advance
	// concurrently between barriers one lookahead apart. Results are
	// identical to sequential replay. It engages only when the run is
	// eligible (enough ranks, no collectives, a contention-free platform —
	// see parallelPlan); ineligible runs silently fall back to sequential.
	// 0 or 1 means sequential.
	Parallel int
	// ParThreshold overrides the rank count below which the parallel
	// engine declines to engage (window synchronization would cost more
	// than it saves). 0 means DefaultParThreshold.
	ParThreshold int

	eng  *des.Engine
	cfg  machine.Config
	mips units.MIPS

	procs  []*proc // reusable rank machines; procs[:nprocs] are active
	nprocs int
	finish []units.Time // per-rank finish instants (struct-of-arrays)
	done   []bool       // per-rank completion flags

	chans   map[channelKey]*chanPair
	dirtyQ  []*chanPair // pairs pushed to this run; the reset worklist
	pending []*transfer // protocol-ready transfers queued for resources
	outUse  []int       // per-node output links in use
	inUse   []int       // per-node input links in use
	busUse  int

	slots     map[int]*collSlot
	freeT     []*transfer // transfer free list
	freeSlots []*collSlot // collective slot free list

	stats    NetworkStats
	err      error
	ranSteps int64 // DES events executed by the last run (all shards)

	// Parallel-engine state. On the root replayer par is nil and scratch
	// holds the reusable shard machinery; each shard runs through a view —
	// a Replayer clone whose par/shard are set, whose eng and stats are
	// private, and whose matching maps alias the root's (guarded by
	// scratch.mu).
	par          *parState
	shard        int
	extraDeliver int64     // split deliveries scheduled by this shard
	skippedWire  int64     // wire events elided by this shard (see startPar)
	scratch      *parState // root only: reusable shard state

	// Per-set memos, keyed by set identity: the collective scan feeding
	// parallelPlan and the trace.Validate result. A warm replayer
	// re-running the same set (a batch, a sweep's platform axis, a
	// benchmark loop) skips both; the memos assume the caller does not
	// mutate a set between replays. Weak pointers keep an idle pooled
	// replayer from pinning the last trace set it ran (see dropRecs).
	collScanned weak.Pointer[trace.Set]
	collFound   bool
	validated   weak.Pointer[trace.Set]
}

// NewReplayer returns a replayer with cold scratch state.
func NewReplayer() *Replayer {
	return &Replayer{
		eng:   des.New(),
		chans: map[channelKey]*chanPair{},
		slots: map[int]*collSlot{},
	}
}

// Simulate replays the trace set on the platform; see the package-level
// Simulate for the model contract. The replayer's scratch state is reused,
// so after the first run on a trace shape the steady-state event loop does
// not allocate.
func (s *Replayer) Simulate(ts *trace.Set, cfg machine.Config) (*Result, error) {
	if ts == nil || ts.NRanks() == 0 {
		return nil, fmt.Errorf("replay: empty trace set")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := s.validate(ts); err != nil {
		return nil, err
	}
	// Results never reference the trace records, so drop them on the way
	// out: an idle pooled replayer must not pin the last trace set it ran.
	defer s.dropRecs()
	windows, err := s.runPrepared(ts, cfg)
	if err != nil {
		return nil, err
	}

	// Result assembly is warm Simulate's entire allocation budget, so it
	// is packed hard: the Result and its timeline set share one block,
	// and every rank's intervals and events are carved out of two arenas
	// pre-sized with SnapshotBound — at most 4 allocations per run,
	// regardless of rank count (3 without markers). The handed-out
	// snapshot owns all of it; nothing aliases the builders.
	blk := &struct {
		res  Result
		tset timeline.Set
	}{}
	res, tset := &blk.res, &blk.tset
	res.Network = s.stats
	res.Steps = s.ranSteps
	res.Windows = windows
	tset.Name = ts.Name
	tset.Variant = ts.Variant
	tset.Lines = make([]timeline.Timeline, 0, s.nprocs)
	var nIv, nEv int
	for _, p := range s.procs[:s.nprocs] {
		iv, ev := p.tl.SnapshotBound()
		nIv, nEv = nIv+iv, nEv+ev
	}
	ivArena := make([]timeline.Interval, 0, nIv)
	var evArena []timeline.Event
	if nEv > 0 {
		evArena = make([]timeline.Event, 0, nEv)
	}
	for _, p := range s.procs[:s.nprocs] {
		finish := s.finish[p.rank]
		var line timeline.Timeline
		line, ivArena, evArena = p.tl.FinishInto(finish, ivArena, evArena)
		if finish > res.Total {
			res.Total = finish
		}
		tset.Lines = append(tset.Lines, line)
	}
	tset.Total = res.Total
	res.Timelines = tset
	if err := tset.Validate(); err != nil {
		return nil, fmt.Errorf("replay: internal timeline corruption: %w", err)
	}
	return res, nil
}

// runPrepared sizes the platform, resets the scratch state and executes
// the event loop — sequential or conservative-window parallel, whichever
// parallelPlan selects — leaving per-rank finish state, stats and step
// counts in place for the caller to assemble. The trace and config must
// already be validated. It returns the number of window rounds (0 when
// sequential).
func (s *Replayer) runPrepared(ts *trace.Set, cfg machine.Config) (int64, error) {
	if cfg.Capacity() < ts.NRanks() {
		cfg = cfg.WithNodes(ts.NRanks())
	}
	mips := cfg.MIPS
	if mips == 0 {
		mips = ts.MIPS
	}
	s.reset(ts, cfg, mips)
	var windows int64
	if shards, lookahead, ok := s.parallelPlan(ts); ok {
		w, err := s.runParallel(shards, lookahead)
		if err != nil {
			return 0, err
		}
		windows = w
	} else {
		for _, p := range s.procs[:s.nprocs] {
			s.eng.ScheduleEvent(0, p, evAdvance)
		}
		if err := s.eng.Run(); err != nil {
			return 0, fmt.Errorf("replay: %w", err)
		}
		s.ranSteps = s.eng.Steps()
	}
	if s.err != nil {
		return 0, s.err
	}
	if err := s.checkAllFinished(); err != nil {
		return 0, err
	}
	return windows, nil
}

// dropRecs detaches the procs from the trace records so an idle pooled
// replayer does not pin the last trace set it ran.
func (s *Replayer) dropRecs() {
	for _, p := range s.procs[:s.nprocs] {
		p.recs = nil
	}
}

// validate runs trace.Validate once per set identity: a warm replayer
// re-running the same set pays nothing.
func (s *Replayer) validate(ts *trace.Set) error {
	if s.validated.Value() == ts {
		return nil
	}
	if err := trace.Validate(ts); err != nil {
		return err
	}
	s.validated = weak.Make(ts)
	return nil
}

// reset prepares the replayer for one run, recycling all scratch state. A
// preceding run that aborted mid-flight (deadlock, model error) may have
// left events, unmatched halves or collective slots behind; everything is
// cleared here rather than at the end of a run, so an errored replayer
// stays reusable.
func (s *Replayer) reset(ts *trace.Set, cfg machine.Config, mips units.MIPS) {
	s.eng.Reset()
	s.cfg = cfg
	s.mips = mips
	s.stats = NetworkStats{}
	s.err = nil
	s.busUse = 0
	s.outUse = resizeZeroed(s.outUse, cfg.Nodes)
	s.inUse = resizeZeroed(s.inUse, cfg.Nodes)
	for _, pr := range s.dirtyQ {
		pr.reset()
	}
	clear(s.dirtyQ)
	s.dirtyQ = s.dirtyQ[:0]
	clear(s.pending)
	s.pending = s.pending[:0]
	clear(s.slots)

	n := ts.NRanks()
	for len(s.procs) < n {
		s.procs = append(s.procs, &proc{
			sim:  s,
			reqs: map[int]*transfer{},
			tl:   timeline.NewBuilder(len(s.procs)),
		})
	}
	s.nprocs = n
	s.finish = resizeZeroedTime(s.finish, n)
	s.done = resizeZeroedBool(s.done, n)
	for i, p := range s.procs[:n] {
		p.rank = i
		p.recs = ts.Traces[i].Records
		p.pc = 0
		clear(p.reqs)
		p.tl.Reset(i)
		p.collIdx = 0
		p.overheadPaid = false
	}
}

// resizeZeroed returns a zero-filled int slice of length n, reusing the
// given backing array when it is large enough.
func resizeZeroed(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeZeroedTime(s []units.Time, n int) []units.Time {
	if cap(s) < n {
		return make([]units.Time, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeZeroedBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// newTransfer draws a zeroed transfer from the free list. Under the
// parallel engine the free list belongs to the root (callers hold the
// matching lock) and every instance handed out is tracked so the run can
// recycle them all at the end — mid-run recycling is disabled there.
func (s *Replayer) newTransfer(src, dst, tag int) *transfer {
	owner := s
	if s.par != nil {
		owner = s.par.root
	}
	var t *transfer
	if n := len(owner.freeT); n > 0 {
		t = owner.freeT[n-1]
		owner.freeT[n-1] = nil
		owner.freeT = owner.freeT[:n-1]
		t.src, t.dst, t.tag = src, dst, tag
	} else {
		t = &transfer{sim: s, src: src, dst: dst, tag: tag}
	}
	if s.par != nil {
		s.par.live = append(s.par.live, t)
	}
	return t
}

// releaseTransfer zeroes the transfer (keeping its waiter capacity) and
// returns it to the free list.
func (s *Replayer) releaseTransfer(t *transfer) {
	*t = transfer{sim: s, waiters: t.waiters[:0], srcWaiters: t.srcWaiters[:0]}
	s.freeT = append(s.freeT, t)
}

// maybeRelease recycles a transfer once nothing can reference it again:
// delivered, matched on both sides (so it sits in no channel queue), no
// live request-table references, and nobody blocked on it. The parallel
// engine never recycles mid-run (reference counts would race across
// shards); runParallel sweeps everything back afterwards instead.
func (s *Replayer) maybeRelease(t *transfer) {
	if s.par != nil {
		return
	}
	if t.deliveredSrc && t.deliveredDst && t.sendPosted && t.recvPosted && t.refs == 0 && t.sender == nil && len(t.waiters) == 0 {
		s.releaseTransfer(t)
	}
}

func (s *Replayer) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.eng.Stop()
}

func (s *Replayer) checkAllFinished() error {
	var stuck []string
	for _, p := range s.procs[:s.nprocs] {
		if !s.done[p.rank] {
			desc := "at end of trace"
			if p.pc < len(p.recs) {
				desc = fmt.Sprintf("record %d (%s)", p.pc, p.recs[p.pc])
			} else if p.pc > 0 {
				desc = fmt.Sprintf("after record %d (%s)", p.pc-1, p.recs[p.pc-1])
			}
			stuck = append(stuck, fmt.Sprintf("rank %d blocked %s", p.rank, desc))
			if len(stuck) >= 8 {
				break
			}
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	msg := stuck[0]
	for _, x := range stuck[1:] {
		msg += "; " + x
	}
	return fmt.Errorf("replay: deadlock: %s", msg)
}

// proc is one rank's replay state machine. Completion state lives in the
// replayer's finish/done arrays (struct-of-arrays: the batch and parallel
// paths scan those without touching the procs). Under the parallel engine
// sim points at the shard view owning this rank for the duration of a run.
type proc struct {
	rank         int
	recs         []trace.Record
	pc           int
	reqs         map[int]*transfer
	tl           *timeline.Builder
	sim          *Replayer
	collIdx      int
	overheadPaid bool // the CPU overhead of recs[pc] has been charged
}

// HandleEvent resumes the rank's state machine; a proc's only event kind is
// evAdvance.
func (p *proc) HandleEvent(des.Kind) { p.advance() }

// payOverhead charges the per-message CPU overhead for the posting record
// at p.pc. It returns true when the proc must yield (the overhead occupies
// the CPU and advance resumes at the same record afterwards).
func (p *proc) payOverhead() bool {
	s := p.sim
	if s.cfg.CPUOverhead <= 0 {
		return false
	}
	if p.overheadPaid {
		p.overheadPaid = false
		return false
	}
	p.overheadPaid = true
	p.tl.Enter(s.eng.Now(), timeline.Overhead)
	s.eng.ScheduleEventAfter(s.cfg.CPUOverhead, p, evAdvance)
	return true
}

// advance executes records until the rank blocks or its trace ends.
func (p *proc) advance() {
	s := p.sim
	for p.pc < len(p.recs) {
		rec := &p.recs[p.pc]
		switch rec.Kind {
		case trace.KindBurst:
			p.pc++
			dur := s.mips.BurstDuration(rec.Instr)
			if dur <= 0 {
				continue
			}
			p.tl.Enter(s.eng.Now(), timeline.Compute)
			s.eng.ScheduleEventAfter(dur, p, evAdvance)
			return

		case trace.KindMarker:
			p.tl.Mark(s.eng.Now(), rec.Phase)
			p.pc++

		case trace.KindISend:
			if p.payOverhead() {
				return
			}
			p.pc++
			t := s.postSend(p.rank, rec)
			p.reqs[rec.Req] = t
			if s.par == nil {
				t.refs++ // recycling is off under the parallel engine
			}

		case trace.KindSend:
			if p.payOverhead() {
				return
			}
			p.pc++
			t := s.postSend(p.rank, rec)
			if !t.eager && !t.deliveredSrc {
				t.sender = p
				p.tl.Enter(s.eng.Now(), timeline.SendBlocked)
				return
			}

		case trace.KindIRecv:
			if p.payOverhead() {
				return
			}
			p.pc++
			t := s.postRecv(p.rank, rec)
			p.reqs[rec.Req] = t
			if s.par == nil {
				t.refs++
			}

		case trace.KindRecv:
			if p.payOverhead() {
				return
			}
			p.pc++
			t := s.postRecv(p.rank, rec)
			if !t.deliveredDst {
				t.waiters = append(t.waiters, p)
				p.tl.Enter(s.eng.Now(), timeline.RecvBlocked)
				return
			}
			s.maybeRelease(t)

		case trace.KindWait:
			t, ok := p.reqs[rec.Req]
			if !ok {
				s.fail(fmt.Errorf("replay: rank %d waits for unknown request %d", p.rank, rec.Req))
				return
			}
			p.pc++
			// The trace validator guarantees each request is waited at most
			// once, so the table entry can be consumed here.
			delete(p.reqs, rec.Req)
			if s.par == nil {
				t.refs--
			}
			// A Wait may sit on either side of the transfer: on an ISend
			// request this proc is the sender, on an IRecv the receiver.
			// Each side blocks on its own delivery flag and waiter list so
			// shards never touch each other's.
			onSrc := p.rank == t.src && p.rank != t.dst
			var delivered bool
			if onSrc {
				delivered = t.deliveredSrc
			} else {
				delivered = t.deliveredDst // never read from the src shard
			}
			if !delivered {
				if s.par != nil && onSrc {
					t.srcWaiters = append(t.srcWaiters, p)
				} else {
					t.waiters = append(t.waiters, p)
				}
				p.tl.Enter(s.eng.Now(), timeline.WaitBlocked)
				return
			}
			s.maybeRelease(t)

		case trace.KindCollective:
			if s.par != nil {
				// parallelPlan refuses traces with collectives; reaching
				// one here means the eligibility scan is broken.
				s.fail(fmt.Errorf("replay: internal: collective reached the parallel engine"))
				return
			}
			p.pc++
			slot, ok := s.slots[p.collIdx]
			if !ok {
				slot = s.newSlot(p.collIdx, *rec)
				s.slots[p.collIdx] = slot
			}
			p.collIdx++
			slot.arrived++
			slot.procs = append(slot.procs, p)
			p.tl.Enter(s.eng.Now(), timeline.CollBlocked)
			if slot.arrived == s.nprocs {
				s.releaseCollective(slot)
			}
			return

		default:
			s.fail(fmt.Errorf("replay: rank %d record %d has unknown kind %v", p.rank, p.pc, rec.Kind))
			return
		}
	}
	s.done[p.rank] = true
	s.finish[p.rank] = s.eng.Now()
}

// newSlot draws a collective slot from the free list.
func (s *Replayer) newSlot(idx int, rec trace.Record) *collSlot {
	if n := len(s.freeSlots); n > 0 {
		slot := s.freeSlots[n-1]
		s.freeSlots[n-1] = nil
		s.freeSlots = s.freeSlots[:n-1]
		slot.idx, slot.rec, slot.arrived = idx, rec, 0
		return slot
	}
	return &collSlot{idx: idx, rec: rec}
}

// releaseCollective charges the platform's collective cost, resumes all
// participants and recycles the slot.
func (s *Replayer) releaseCollective(slot *collSlot) {
	cost := s.cfg.CollectiveCost(slot.rec.Coll, slot.rec.Size, s.nprocs)
	s.stats.Collectives++
	delete(s.slots, slot.idx)
	for _, p := range slot.procs {
		s.eng.ScheduleEventAfter(cost, p, evAdvance)
	}
	slot.procs = slot.procs[:0]
	s.freeSlots = append(s.freeSlots, slot)
}

// pair finds or creates the matching-state entry for one directed channel.
// Pairs persist across runs (a replayer reused on the same workload never
// re-creates them).
func (s *Replayer) pair(key channelKey) *chanPair {
	pr := s.chans[key]
	if pr == nil {
		pr = &chanPair{}
		s.chans[key] = pr
	}
	return pr
}

// enqueue appends the transfer to one of the pair's queues, marking the
// pair for the next reset. The reset worklist always lives on the root
// replayer: shard views share one set of matching maps.
func (s *Replayer) enqueue(pr *chanPair, q *chanQueue, t *transfer) {
	if !pr.dirty {
		pr.dirty = true
		owner := s
		if s.par != nil {
			owner = s.par.root
		}
		owner.dirtyQ = append(owner.dirtyQ, pr)
	}
	q.push(t)
}

// claimStart is the parallel engine's start gate, called with the matching
// lock held: the shard whose post completes the protocol claims the right
// to route the transfer into the network, so exactly one shard calls
// startPar — after releasing the lock (the routing only touches the
// claiming shard's engine and the window inboxes, which have their own
// synchronization).
func (s *Replayer) claimStart(t *transfer) bool {
	if t.started || !t.sendPosted || (!t.eager && !t.recvPosted) {
		return false
	}
	t.started = true
	t.sim = s // wire/delivery events for t route through the claiming shard
	return true
}

// postSend matches or enqueues the sender half of a transfer. Matching
// state is shared across shards under the parallel engine; one lock
// serializes both post paths (FIFO pairing stays deterministic because a
// directed channel's sends all come from one rank and its receives from
// one rank, each replayed in program order).
func (s *Replayer) postSend(src int, rec *trace.Record) *transfer {
	par := s.par != nil
	if par {
		s.par.lock()
	}
	key := channelKey{src, rec.Peer, rec.Tag}
	pr := s.pair(key)
	var t *transfer
	if q := &pr.recv; !q.empty() {
		t = q.pop()
	} else {
		t = s.newTransfer(src, rec.Peer, rec.Tag)
		s.enqueue(pr, &pr.send, t)
	}
	t.sendPosted = true
	t.sendAt = s.eng.Now()
	t.size = rec.Size
	t.local = s.cfg.SameNode(src, rec.Peer)
	t.eager = s.cfg.Eager(rec.Size)
	if par {
		start := s.claimStart(t)
		s.par.unlock()
		if start {
			s.startPar(t)
		}
		return t
	}
	s.maybeStart(t)
	return t
}

// postRecv matches or enqueues the receiver half of a transfer.
func (s *Replayer) postRecv(dst int, rec *trace.Record) *transfer {
	par := s.par != nil
	if par {
		s.par.lock()
	}
	key := channelKey{rec.Peer, dst, rec.Tag}
	pr := s.pair(key)
	var t *transfer
	if q := &pr.send; !q.empty() {
		t = q.pop()
	} else {
		t = s.newTransfer(rec.Peer, dst, rec.Tag)
		t.size = rec.Size
		s.enqueue(pr, &pr.recv, t)
	}
	t.recvPosted = true
	t.recvAt = s.eng.Now()
	if par {
		start := s.claimStart(t)
		s.par.unlock()
		if start {
			s.startPar(t)
		}
		return t
	}
	s.maybeStart(t)
	return t
}

// maybeStart checks protocol readiness and routes the transfer into the
// network: local transfers bypass resources; remote ones queue for links
// and a bus. Sequential engine only — the parallel engine gates starts
// through claimStart/startPar, which derive delivery from the recorded
// post instants because the matching shard's clock may lag the transfer's
// true start time.
func (s *Replayer) maybeStart(t *transfer) {
	if t.started {
		return
	}
	if !t.sendPosted {
		return // receive posted first; wait for the sender
	}
	if !t.eager && !t.recvPosted {
		return // rendezvous: transfer starts only once the receive exists
	}
	t.started = true
	if t.local {
		d := s.cfg.LocalLatency + s.cfg.LocalTransferTime(t.size)
		s.eng.ScheduleEventAfter(d, t, evDeliver)
		return
	}
	s.pending = append(s.pending, t)
	if len(s.pending) > s.stats.MaxPending {
		s.stats.MaxPending = len(s.pending)
	}
	s.drainPending()
}

// resourcesFree reports whether the transfer can occupy its links and a bus.
func (s *Replayer) resourcesFree(t *transfer) bool {
	srcNode, dstNode := s.cfg.NodeOf(t.src), s.cfg.NodeOf(t.dst)
	if s.cfg.OutLinks > 0 && s.outUse[srcNode] >= s.cfg.OutLinks {
		return false
	}
	if s.cfg.InLinks > 0 && s.inUse[dstNode] >= s.cfg.InLinks {
		return false
	}
	if s.cfg.Buses > 0 && s.busUse >= s.cfg.Buses {
		return false
	}
	return true
}

// drainPending starts every queued transfer whose resources are free, in
// FIFO order with skipping (a blocked head does not stall unrelated pairs).
func (s *Replayer) drainPending() {
	remaining := s.pending[:0]
	for _, t := range s.pending {
		if s.resourcesFree(t) {
			s.startRemote(t)
		} else {
			remaining = append(remaining, t)
		}
	}
	s.pending = remaining
}

// startRemote occupies resources and schedules the wire phase. Resources
// are held for the wire time; delivery happens one latency later (the
// latency models end-point overheads, not bus occupancy).
func (s *Replayer) startRemote(t *transfer) {
	srcNode, dstNode := s.cfg.NodeOf(t.src), s.cfg.NodeOf(t.dst)
	s.outUse[srcNode]++
	s.inUse[dstNode]++
	s.busUse++
	wire := s.cfg.TransferTime(t.size)
	s.stats.BusTime += wire
	s.eng.ScheduleEventAfter(wire, t, evWireDone)
}

// wireDone releases the transfer's resources, schedules the delivery one
// latency later, and hands the freed resources to waiting transfers. Only
// the sequential engine schedules wire events; the parallel engine holds
// no resources (it requires a contention-free platform) and folds the
// wire time into the delivery instant directly (see startPar).
func (s *Replayer) wireDone(t *transfer) {
	srcNode, dstNode := s.cfg.NodeOf(t.src), s.cfg.NodeOf(t.dst)
	s.outUse[srcNode]--
	s.inUse[dstNode]--
	s.busUse--
	s.eng.ScheduleEventAfter(s.cfg.Latency, t, evDeliver)
	s.drainPending()
}

// deliver completes the transfer and resumes everything blocked on it.
// Sequential replay and the parallel same-shard case both come through
// here; srcWaiters is only ever populated under the parallel engine.
func (s *Replayer) deliver(t *transfer) {
	t.deliveredSrc, t.deliveredDst = true, true
	s.stats.Transfers++
	s.stats.Bytes += t.size
	if t.local {
		s.stats.LocalTransfers++
	}
	if t.sender != nil {
		p := t.sender
		t.sender = nil
		p.advance()
	}
	for _, p := range t.srcWaiters {
		p.advance()
	}
	t.srcWaiters = t.srcWaiters[:0]
	for _, p := range t.waiters {
		p.advance()
	}
	t.waiters = t.waiters[:0]
	s.maybeRelease(t)
}

package replay

import (
	"fmt"

	"overlapsim/internal/des"
	"overlapsim/internal/machine"
	"overlapsim/internal/timeline"
	"overlapsim/internal/trace"
	"overlapsim/internal/units"
)

// NetworkStats aggregates what the network did during a replay.
type NetworkStats struct {
	Transfers      int            // point-to-point transfers completed
	LocalTransfers int            // subset that stayed within a node
	Bytes          units.Bytes    // total point-to-point payload
	BusTime        units.Duration // total wire occupancy summed over buses
	Collectives    int            // collective operations completed
	MaxPending     int            // peak transfers queued for resources
}

// BusUtilization returns the mean fraction of the configured buses kept
// busy over the run; 0 when the platform has unlimited buses.
func (n NetworkStats) BusUtilization(buses int, total units.Time) float64 {
	if buses <= 0 || total <= 0 {
		return 0
	}
	return n.BusTime.Seconds() / (float64(buses) * units.Duration(total).Seconds())
}

// RankBreakdown is the per-rank time accounting of a replay.
type RankBreakdown struct {
	Rank       int
	Finish     units.Time
	Compute    units.Duration
	Overhead   units.Duration
	Send       units.Duration
	Recv       units.Duration
	Wait       units.Duration
	Collective units.Duration
}

// Blocked sums all communication stall time.
func (r RankBreakdown) Blocked() units.Duration {
	return r.Send + r.Recv + r.Wait + r.Collective
}

// Result is the outcome of replaying one trace set.
type Result struct {
	Total     units.Time // simulated runtime (max rank finish)
	Timelines *timeline.Set
	Ranks     []RankBreakdown
	Network   NetworkStats
	Steps     int64 // DES events executed
}

// MaxBlockedFraction returns the largest per-rank blocked-time share, a
// platform-dependent measure of how communication-bound the execution is.
func (r *Result) MaxBlockedFraction() float64 {
	if r.Total <= 0 {
		return 0
	}
	var worst float64
	for _, rb := range r.Ranks {
		f := rb.Blocked().Seconds() / units.Duration(r.Total).Seconds()
		if f > worst {
			worst = f
		}
	}
	return worst
}

// MeanBlockedFraction returns the mean per-rank blocked-time share.
func (r *Result) MeanBlockedFraction() float64 {
	if r.Total <= 0 || len(r.Ranks) == 0 {
		return 0
	}
	var sum float64
	for _, rb := range r.Ranks {
		sum += rb.Blocked().Seconds() / units.Duration(r.Total).Seconds()
	}
	return sum / float64(len(r.Ranks))
}

// Simulate replays the trace set on the platform. The platform is auto-
// sized to the rank count when its capacity is too small; MIPS 0 defers to
// the rate recorded in the trace.
func Simulate(ts *trace.Set, cfg machine.Config) (*Result, error) {
	if ts == nil || ts.NRanks() == 0 {
		return nil, fmt.Errorf("replay: empty trace set")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := trace.Validate(ts); err != nil {
		return nil, err
	}
	if cfg.Capacity() < ts.NRanks() {
		cfg = cfg.WithNodes(ts.NRanks())
	}
	mips := cfg.MIPS
	if mips == 0 {
		mips = ts.MIPS
	}

	s := &sim{
		eng:    des.New(),
		cfg:    cfg,
		mips:   mips,
		sendQ:  map[channelKey][]*transfer{},
		recvQ:  map[channelKey][]*transfer{},
		outUse: make([]int, cfg.Nodes),
		inUse:  make([]int, cfg.Nodes),
		slots:  map[int]*collSlot{},
	}
	s.procs = make([]*proc, ts.NRanks())
	for i := range s.procs {
		s.procs[i] = &proc{
			rank: i,
			recs: ts.Traces[i].Records,
			reqs: map[int]*transfer{},
			tl:   timeline.NewBuilder(i),
			sim:  s,
		}
	}
	for _, p := range s.procs {
		p := p
		s.eng.Schedule(0, func() { p.advance() })
	}
	if err := s.eng.Run(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if s.err != nil {
		return nil, s.err
	}
	if err := s.checkAllFinished(); err != nil {
		return nil, err
	}

	res := &Result{Network: s.stats, Steps: s.eng.Steps()}
	tset := &timeline.Set{Name: ts.Name, Variant: ts.Variant}
	for _, p := range s.procs {
		line := p.tl.Finish(p.finish)
		if p.finish > res.Total {
			res.Total = p.finish
		}
		res.Ranks = append(res.Ranks, RankBreakdown{
			Rank:       p.rank,
			Finish:     p.finish,
			Compute:    line.TimeIn(timeline.Compute),
			Overhead:   line.TimeIn(timeline.Overhead),
			Send:       line.TimeIn(timeline.SendBlocked),
			Recv:       line.TimeIn(timeline.RecvBlocked),
			Wait:       line.TimeIn(timeline.WaitBlocked),
			Collective: line.TimeIn(timeline.CollBlocked),
		})
		tset.Lines = append(tset.Lines, line)
	}
	tset.Total = res.Total
	res.Timelines = tset
	if err := tset.Validate(); err != nil {
		return nil, fmt.Errorf("replay: internal timeline corruption: %w", err)
	}
	return res, nil
}

// channelKey identifies a directed message channel for FIFO matching.
type channelKey struct {
	src, dst, tag int
}

// transfer is one point-to-point message moving through the network model.
// Before matching, the object represents whichever half was posted first.
type transfer struct {
	src, dst, tag int
	size          units.Bytes
	local         bool
	eager         bool

	sendPosted, recvPosted bool
	started, delivered     bool

	sender  *proc   // blocked rendezvous sender, resumed at delivery
	waiters []*proc // procs blocked on this transfer's delivery
}

// collSlot synchronizes one collective operation across ranks. Ranks find
// their slot by their per-rank collective counter; the trace validator
// guarantees all ranks agree on the sequence.
type collSlot struct {
	idx     int
	rec     trace.Record
	arrived int
	procs   []*proc
}

// sim holds the global replay state.
type sim struct {
	eng   *des.Engine
	cfg   machine.Config
	mips  units.MIPS
	procs []*proc

	sendQ, recvQ map[channelKey][]*transfer
	pending      []*transfer // protocol-ready transfers queued for resources
	outUse       []int       // per-node output links in use
	inUse        []int       // per-node input links in use
	busUse       int

	slots map[int]*collSlot

	stats NetworkStats
	err   error
}

func (s *sim) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.eng.Stop()
}

func (s *sim) checkAllFinished() error {
	var stuck []string
	for _, p := range s.procs {
		if !p.finished {
			desc := "at end of trace"
			if p.pc < len(p.recs) {
				desc = fmt.Sprintf("record %d (%s)", p.pc, p.recs[p.pc])
			} else if p.pc > 0 {
				desc = fmt.Sprintf("after record %d (%s)", p.pc-1, p.recs[p.pc-1])
			}
			stuck = append(stuck, fmt.Sprintf("rank %d blocked %s", p.rank, desc))
			if len(stuck) >= 8 {
				break
			}
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	msg := stuck[0]
	for _, x := range stuck[1:] {
		msg += "; " + x
	}
	return fmt.Errorf("replay: deadlock: %s", msg)
}

// proc is one rank's replay state machine.
type proc struct {
	rank         int
	recs         []trace.Record
	pc           int
	reqs         map[int]*transfer
	tl           *timeline.Builder
	sim          *sim
	collIdx      int
	overheadPaid bool // the CPU overhead of recs[pc] has been charged
	finished     bool
	finish       units.Time
}

// payOverhead charges the per-message CPU overhead for the posting record
// at p.pc. It returns true when the proc must yield (the overhead occupies
// the CPU and advance resumes at the same record afterwards).
func (p *proc) payOverhead() bool {
	s := p.sim
	if s.cfg.CPUOverhead <= 0 {
		return false
	}
	if p.overheadPaid {
		p.overheadPaid = false
		return false
	}
	p.overheadPaid = true
	p.tl.Enter(s.eng.Now(), timeline.Overhead)
	p2 := p
	s.eng.ScheduleAfter(s.cfg.CPUOverhead, func() { p2.advance() })
	return true
}

// advance executes records until the rank blocks or its trace ends.
func (p *proc) advance() {
	s := p.sim
	for p.pc < len(p.recs) {
		rec := p.recs[p.pc]
		switch rec.Kind {
		case trace.KindBurst:
			p.pc++
			dur := s.mips.BurstDuration(rec.Instr)
			if dur <= 0 {
				continue
			}
			p.tl.Enter(s.eng.Now(), timeline.Compute)
			p2 := p
			s.eng.ScheduleAfter(dur, func() { p2.advance() })
			return

		case trace.KindMarker:
			p.tl.Mark(s.eng.Now(), rec.Phase)
			p.pc++

		case trace.KindISend:
			if p.payOverhead() {
				return
			}
			p.pc++
			t := s.postSend(p.rank, rec)
			p.reqs[rec.Req] = t

		case trace.KindSend:
			if p.payOverhead() {
				return
			}
			p.pc++
			t := s.postSend(p.rank, rec)
			if !t.eager && !t.delivered {
				t.sender = p
				p.tl.Enter(s.eng.Now(), timeline.SendBlocked)
				return
			}

		case trace.KindIRecv:
			if p.payOverhead() {
				return
			}
			p.pc++
			t := s.postRecv(p.rank, rec)
			p.reqs[rec.Req] = t

		case trace.KindRecv:
			if p.payOverhead() {
				return
			}
			p.pc++
			t := s.postRecv(p.rank, rec)
			if !t.delivered {
				t.waiters = append(t.waiters, p)
				p.tl.Enter(s.eng.Now(), timeline.RecvBlocked)
				return
			}

		case trace.KindWait:
			t, ok := p.reqs[rec.Req]
			if !ok {
				s.fail(fmt.Errorf("replay: rank %d waits for unknown request %d", p.rank, rec.Req))
				return
			}
			p.pc++
			if !t.delivered {
				t.waiters = append(t.waiters, p)
				p.tl.Enter(s.eng.Now(), timeline.WaitBlocked)
				return
			}

		case trace.KindCollective:
			p.pc++
			slot, ok := s.slots[p.collIdx]
			if !ok {
				slot = &collSlot{idx: p.collIdx, rec: rec}
				s.slots[p.collIdx] = slot
			}
			p.collIdx++
			slot.arrived++
			slot.procs = append(slot.procs, p)
			p.tl.Enter(s.eng.Now(), timeline.CollBlocked)
			if slot.arrived == len(s.procs) {
				s.releaseCollective(slot)
			}
			return

		default:
			s.fail(fmt.Errorf("replay: rank %d record %d has unknown kind %v", p.rank, p.pc, rec.Kind))
			return
		}
	}
	p.finished = true
	p.finish = s.eng.Now()
}

// releaseCollective charges the platform's collective cost and resumes all
// participants.
func (s *sim) releaseCollective(slot *collSlot) {
	cost := s.cfg.CollectiveCost(slot.rec.Coll, slot.rec.Size, len(s.procs))
	s.stats.Collectives++
	delete(s.slots, slot.idx)
	for _, p := range slot.procs {
		p := p
		s.eng.ScheduleAfter(cost, func() { p.advance() })
	}
}

// postSend matches or enqueues the sender half of a transfer.
func (s *sim) postSend(src int, rec trace.Record) *transfer {
	key := channelKey{src, rec.Peer, rec.Tag}
	var t *transfer
	if q := s.recvQ[key]; len(q) > 0 {
		t = q[0]
		s.recvQ[key] = q[1:]
	} else {
		t = &transfer{src: src, dst: rec.Peer, tag: rec.Tag}
		s.sendQ[key] = append(s.sendQ[key], t)
	}
	t.sendPosted = true
	t.size = rec.Size
	t.local = s.cfg.SameNode(src, rec.Peer)
	t.eager = s.cfg.Eager(rec.Size)
	s.maybeStart(t)
	return t
}

// postRecv matches or enqueues the receiver half of a transfer.
func (s *sim) postRecv(dst int, rec trace.Record) *transfer {
	key := channelKey{rec.Peer, dst, rec.Tag}
	var t *transfer
	if q := s.sendQ[key]; len(q) > 0 {
		t = q[0]
		s.sendQ[key] = q[1:]
	} else {
		t = &transfer{src: rec.Peer, dst: dst, tag: rec.Tag, size: rec.Size}
		s.recvQ[key] = append(s.recvQ[key], t)
	}
	t.recvPosted = true
	s.maybeStart(t)
	return t
}

// maybeStart checks protocol readiness and routes the transfer into the
// network: local transfers bypass resources; remote ones queue for links
// and a bus.
func (s *sim) maybeStart(t *transfer) {
	if t.started {
		return
	}
	if !t.sendPosted {
		return // receive posted first; wait for the sender
	}
	if !t.eager && !t.recvPosted {
		return // rendezvous: transfer starts only once the receive exists
	}
	t.started = true
	if t.local {
		d := s.cfg.LocalLatency + s.cfg.LocalTransferTime(t.size)
		s.eng.ScheduleAfter(d, func() { s.deliver(t) })
		return
	}
	s.pending = append(s.pending, t)
	if len(s.pending) > s.stats.MaxPending {
		s.stats.MaxPending = len(s.pending)
	}
	s.drainPending()
}

// resourcesFree reports whether the transfer can occupy its links and a bus.
func (s *sim) resourcesFree(t *transfer) bool {
	srcNode, dstNode := s.cfg.NodeOf(t.src), s.cfg.NodeOf(t.dst)
	if s.cfg.OutLinks > 0 && s.outUse[srcNode] >= s.cfg.OutLinks {
		return false
	}
	if s.cfg.InLinks > 0 && s.inUse[dstNode] >= s.cfg.InLinks {
		return false
	}
	if s.cfg.Buses > 0 && s.busUse >= s.cfg.Buses {
		return false
	}
	return true
}

// drainPending starts every queued transfer whose resources are free, in
// FIFO order with skipping (a blocked head does not stall unrelated pairs).
func (s *sim) drainPending() {
	remaining := s.pending[:0]
	for _, t := range s.pending {
		if s.resourcesFree(t) {
			s.startRemote(t)
		} else {
			remaining = append(remaining, t)
		}
	}
	s.pending = remaining
}

// startRemote occupies resources and schedules the wire phase.
func (s *sim) startRemote(t *transfer) {
	srcNode, dstNode := s.cfg.NodeOf(t.src), s.cfg.NodeOf(t.dst)
	s.outUse[srcNode]++
	s.inUse[dstNode]++
	s.busUse++
	wire := s.cfg.TransferTime(t.size)
	s.stats.BusTime += wire
	// Resources are held for the wire time; delivery happens one latency
	// later (the latency models end-point overheads, not bus occupancy).
	s.eng.ScheduleAfter(wire, func() {
		s.outUse[srcNode]--
		s.inUse[dstNode]--
		s.busUse--
		s.eng.ScheduleAfter(s.cfg.Latency, func() { s.deliver(t) })
		s.drainPending()
	})
}

// deliver completes the transfer and resumes everything blocked on it.
func (s *sim) deliver(t *transfer) {
	t.delivered = true
	s.stats.Transfers++
	s.stats.Bytes += t.size
	if t.local {
		s.stats.LocalTransfers++
	}
	if t.sender != nil {
		p := t.sender
		t.sender = nil
		p.advance()
	}
	for _, p := range t.waiters {
		p := p
		p.advance()
	}
	t.waiters = nil
}

// Package replay reconstructs an application's time behaviour from its
// traces on a configurable parallel platform — the role Dimemas plays in
// the paper's environment, and the consumer end of the trace → variant →
// replay pipeline: the tracer produces one original trace, the overlap
// package derives potential (overlapped) variants from it, and this
// package turns each variant into simulated time on a chosen machine.
//
// The simulator is a deterministic discrete-event replayer built on the
// des engine. Every rank is a state machine walking its trace: computation
// bursts occupy the CPU for instructions/MIPS, point-to-point records post
// transfers into a network model with per-node input/output links and a
// shared set of buses, and collectives synchronize all ranks and apply the
// platform's cost formula. Messages at or below the eager threshold leave
// the sender without synchronization; larger ones use a rendezvous that
// couples the sender to the posted receive. The output is a per-rank state
// timeline plus network statistics, ready for the visualization stage.
//
// # Allocation-free hot path
//
// Replay throughput bounds sweep scale — every grid point, shard and
// memoized-miss replays — so the event loop performs no steady-state heap
// allocation. Ranks and transfers implement des.Target and are driven by
// typed events (advance, wire-done, deliver) instead of closures, and all
// per-run scratch is owned and recycled by a Replayer: the DES engine and
// its queue, rank state machines with their request tables and timeline
// builders, per-channel FIFO queues, collective slots, and a transfer free
// list. A transfer returns to the free list once it is delivered, matched
// on both sides and unreferenced by any request table (the trace validator
// guarantees each request is waited at most once, which is what makes the
// reference count exact).
//
// A warm Replayer therefore allocates only the result snapshot a Simulate
// call hands back: one block holding the Result and its timeline set, the
// lines slice, and two arenas all ranks' intervals and events are carved
// from (sized up front via timeline.Builder.SnapshotBound, so the count
// is independent of rank count). TestReplaySteadyStateAllocs pins that
// budget (4 allocations for the 4-rank guard workload); the package-level
// Simulate draws replayers from an internal pool so every caller — the
// sweep runner's workers included — reuses warm scratch automatically.
//
// Determinism matters beyond reproducibility: Simulate is a pure function
// of (trace set, machine configuration), which is what lets the sweep
// layer memoize replay results by (workload, variant, platform) and lets
// sharded sweep campaigns promise byte-identical merged output. The
// recycling layer preserves this bit-for-bit: typed events are scheduled
// in exactly the closure path's order, and pooled objects are fully
// re-zeroed, so a reused replayer's output is indistinguishable from a
// cold one's.
package replay

// Package replay reconstructs an application's time behaviour from its
// traces on a configurable parallel platform — the role Dimemas plays in
// the paper's environment, and the consumer end of the trace → variant →
// replay pipeline: the tracer produces one original trace, the overlap
// package derives potential (overlapped) variants from it, and this
// package turns each variant into simulated time on a chosen machine.
//
// The simulator is a deterministic discrete-event replayer built on the
// des engine. Every rank is a state machine walking its trace: computation
// bursts occupy the CPU for instructions/MIPS, point-to-point records post
// transfers into a network model with per-node input/output links and a
// shared set of buses, and collectives synchronize all ranks and apply the
// platform's cost formula. Messages at or below the eager threshold leave
// the sender without synchronization; larger ones use a rendezvous that
// couples the sender to the posted receive. The output is a per-rank state
// timeline plus network statistics, ready for the visualization stage.
//
// Determinism matters beyond reproducibility: Simulate is a pure function
// of (trace set, machine configuration), which is what lets the sweep
// layer memoize replay results by (workload, variant, platform) and lets
// sharded sweep campaigns promise byte-identical merged output.
package replay

// Package timeline represents simulated per-rank time behaviour: the data
// the replayer produces and the visualization stage renders. It corresponds
// to the state records a Paraver trace holds for each process.
package timeline

import (
	"fmt"

	"overlapsim/internal/units"
)

// State is what a rank is doing during an interval.
type State uint8

// Rank states.
const (
	// Compute: executing a computation burst.
	Compute State = iota
	// SendBlocked: stalled in a blocking (rendezvous) send.
	SendBlocked
	// RecvBlocked: stalled in a blocking receive.
	RecvBlocked
	// WaitBlocked: stalled in a wait for a partial transfer.
	WaitBlocked
	// CollBlocked: stalled in a collective operation.
	CollBlocked
	// Overhead: CPU busy initiating communication (posting sends and
	// receives); paid per partial message and not overlappable.
	Overhead
	// Idle: finished while other ranks keep running.
	Idle
)

var stateNames = [...]string{
	Compute:     "compute",
	SendBlocked: "send",
	RecvBlocked: "recv",
	WaitBlocked: "wait",
	CollBlocked: "collective",
	Overhead:    "overhead",
	Idle:        "idle",
}

// NumStates is the number of defined states.
const NumStates = len(stateNames)

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Blocked reports whether the state is a communication stall.
func (s State) Blocked() bool {
	return s == SendBlocked || s == RecvBlocked || s == WaitBlocked || s == CollBlocked
}

// Interval is a half-open span [Start, End) spent in one state.
type Interval struct {
	Start units.Time
	End   units.Time
	State State
}

// Duration returns the interval length.
func (iv Interval) Duration() units.Duration { return iv.End.Sub(iv.Start) }

// Event is an instantaneous annotation (a phase marker).
type Event struct {
	At    units.Time
	Label string
}

// Timeline is one rank's simulated behaviour.
type Timeline struct {
	Rank      int
	Intervals []Interval
	Events    []Event
	Finish    units.Time
}

// TimeIn sums the time the rank spends in the given state.
func (t *Timeline) TimeIn(s State) units.Duration {
	var total units.Duration
	for _, iv := range t.Intervals {
		if iv.State == s {
			total += iv.Duration()
		}
	}
	return total
}

// BlockedTime sums the time spent in any blocked state.
func (t *Timeline) BlockedTime() units.Duration {
	var total units.Duration
	for _, iv := range t.Intervals {
		if iv.State.Blocked() {
			total += iv.Duration()
		}
	}
	return total
}

// Validate checks the structural invariants: intervals are sorted, non-
// overlapping, of non-negative length, and end by Finish.
func (t *Timeline) Validate() error {
	var cursor units.Time
	for i, iv := range t.Intervals {
		if iv.End < iv.Start {
			return fmt.Errorf("timeline: rank %d interval %d has End %v before Start %v", t.Rank, i, iv.End, iv.Start)
		}
		if iv.Start < cursor {
			return fmt.Errorf("timeline: rank %d interval %d starts at %v, before previous end %v", t.Rank, i, iv.Start, cursor)
		}
		cursor = iv.End
	}
	if cursor > t.Finish {
		return fmt.Errorf("timeline: rank %d intervals end at %v, after Finish %v", t.Rank, cursor, t.Finish)
	}
	return nil
}

// Set is the complete simulated behaviour of one execution.
type Set struct {
	Name    string
	Variant string
	Total   units.Time
	Lines   []Timeline
}

// Validate checks every line plus set-level invariants.
func (s *Set) Validate() error {
	var max units.Time
	for i := range s.Lines {
		if err := s.Lines[i].Validate(); err != nil {
			return err
		}
		if s.Lines[i].Finish > max {
			max = s.Lines[i].Finish
		}
	}
	if max > s.Total {
		return fmt.Errorf("timeline: rank finish %v exceeds set total %v", max, s.Total)
	}
	return nil
}

// Builder incrementally records one rank's state transitions during replay.
type Builder struct {
	line  Timeline
	open  bool
	start units.Time
	state State
}

// NewBuilder starts a timeline for the given rank.
func NewBuilder(rank int) *Builder {
	return &Builder{line: Timeline{Rank: rank}}
}

// Reset makes the builder record a fresh timeline for the given rank while
// keeping the interval and event backing arrays, so a reused builder
// reaches zero steady-state allocation. Timelines returned by earlier
// Finish calls are unaffected: Finish hands out an independent snapshot.
func (b *Builder) Reset(rank int) {
	b.line.Rank = rank
	b.line.Intervals = b.line.Intervals[:0]
	b.line.Events = b.line.Events[:0]
	b.line.Finish = 0
	b.open = false
}

// Enter switches the rank into the given state at time now, closing any
// open interval. Zero-length intervals are dropped and adjacent intervals
// in the same state merge.
func (b *Builder) Enter(now units.Time, s State) {
	if b.open {
		if b.state == s {
			return
		}
		b.close(now)
	}
	b.open = true
	b.start = now
	b.state = s
}

// Mark records an instantaneous labeled event.
func (b *Builder) Mark(now units.Time, label string) {
	b.line.Events = append(b.line.Events, Event{At: now, Label: label})
}

func (b *Builder) close(now units.Time) {
	if now > b.start {
		n := len(b.line.Intervals)
		if n > 0 && b.line.Intervals[n-1].State == b.state && b.line.Intervals[n-1].End == b.start {
			b.line.Intervals[n-1].End = now
		} else {
			b.line.Intervals = append(b.line.Intervals, Interval{Start: b.start, End: now, State: b.state})
		}
	}
	b.open = false
}

// StateDurations sums the time spent in each state as if the timeline were
// closed at now, without snapshotting it: the per-state totals equal
// TimeIn on the Timeline that Finish(now) would return, but nothing is
// allocated and the builder keeps recording. The batch replay path uses
// this to summarize a point without materializing per-rank timelines.
func (b *Builder) StateDurations(now units.Time) [NumStates]units.Duration {
	var d [NumStates]units.Duration
	for _, iv := range b.line.Intervals {
		d[iv.State] += iv.Duration()
	}
	if b.open && now > b.start {
		d[b.state] += now.Sub(b.start)
	}
	return d
}

// Finish closes the timeline at the given instant and returns it. The
// returned Timeline owns its interval and event slices — it stays valid
// after the builder is Reset and reused.
func (b *Builder) Finish(now units.Time) Timeline {
	out, _, _ := b.FinishInto(now, nil, nil)
	return out
}

// SnapshotBound returns upper bounds on the interval and event counts the
// next Finish or FinishInto call would snapshot (closing an open interval
// may append one entry or merge into the last). Callers building many
// timelines sum the bounds to pre-size shared arenas so FinishInto never
// grows them.
func (b *Builder) SnapshotBound() (intervals, events int) {
	n := len(b.line.Intervals)
	if b.open {
		n++
	}
	return n, len(b.line.Events)
}

// FinishInto is Finish appending the snapshot's backing data to the given
// arenas instead of allocating per call, returning the grown arenas. The
// returned Timeline's slices are capacity-clipped views into the arenas,
// so later appends by the owner cannot alias them; arenas pre-sized via
// SnapshotBound make a whole set of timelines cost two allocations. Nil
// arenas reproduce Finish exactly.
func (b *Builder) FinishInto(now units.Time, ivs []Interval, evs []Event) (Timeline, []Interval, []Event) {
	if b.open {
		b.close(now)
	}
	b.line.Finish = now
	out := b.line
	// Empty slices normalize to nil so a reused builder's output is
	// indistinguishable from a fresh one's.
	out.Intervals, out.Events = nil, nil
	if len(b.line.Intervals) > 0 {
		start := len(ivs)
		ivs = append(ivs, b.line.Intervals...)
		out.Intervals = ivs[start:len(ivs):len(ivs)]
	}
	if len(b.line.Events) > 0 {
		start := len(evs)
		evs = append(evs, b.line.Events...)
		out.Events = evs[start:len(evs):len(evs)]
	}
	return out, ivs, evs
}

package timeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"overlapsim/internal/units"
)

func TestStateNames(t *testing.T) {
	if Compute.String() != "compute" || CollBlocked.String() != "collective" {
		t.Error("state names wrong")
	}
	if !RecvBlocked.Blocked() || Compute.Blocked() || Idle.Blocked() {
		t.Error("Blocked classification wrong")
	}
	if got := State(99).String(); got != "state(99)" {
		t.Errorf("unknown state = %q", got)
	}
}

func TestBuilderBasicFlow(t *testing.T) {
	b := NewBuilder(3)
	b.Enter(0, Compute)
	b.Enter(100, RecvBlocked)
	b.Enter(150, Compute)
	line := b.Finish(200)
	if line.Rank != 3 {
		t.Errorf("rank = %d", line.Rank)
	}
	if len(line.Intervals) != 3 {
		t.Fatalf("intervals = %+v, want 3", line.Intervals)
	}
	if line.Intervals[1].State != RecvBlocked || line.Intervals[1].Duration() != 50 {
		t.Errorf("middle interval = %+v", line.Intervals[1])
	}
	if line.Finish != 200 {
		t.Errorf("finish = %v", line.Finish)
	}
	if err := line.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuilderMergesSameState(t *testing.T) {
	b := NewBuilder(0)
	b.Enter(0, Compute)
	b.Enter(10, Compute) // re-entering the same state must not split
	b.Enter(20, WaitBlocked)
	b.Enter(20, Compute) // zero-length wait is dropped
	line := b.Finish(30)
	if len(line.Intervals) != 1 {
		t.Fatalf("intervals = %+v, want single merged compute", line.Intervals)
	}
	if line.Intervals[0].Duration() != 30 {
		t.Errorf("merged duration = %v, want 30", line.Intervals[0].Duration())
	}
}

func TestBuilderAdjacentSameStateMerge(t *testing.T) {
	b := NewBuilder(0)
	b.Enter(0, Compute)
	b.Enter(10, WaitBlocked) // zero length: dropped
	b.Enter(10, Compute)     // resumes compute: merges with previous
	line := b.Finish(20)
	if len(line.Intervals) != 1 || line.Intervals[0].End != 20 {
		t.Errorf("intervals = %+v, want one compute [0,20)", line.Intervals)
	}
}

func TestTimeInAndBlockedTime(t *testing.T) {
	b := NewBuilder(0)
	b.Enter(0, Compute)
	b.Enter(40, RecvBlocked)
	b.Enter(60, CollBlocked)
	b.Enter(90, Compute)
	line := b.Finish(100)
	if got := line.TimeIn(Compute); got != 50 {
		t.Errorf("TimeIn(Compute) = %v, want 50", got)
	}
	if got := line.BlockedTime(); got != 50 {
		t.Errorf("BlockedTime = %v, want 50", got)
	}
}

func TestMarkEvents(t *testing.T) {
	b := NewBuilder(0)
	b.Enter(0, Compute)
	b.Mark(5, "iteration 1")
	line := b.Finish(10)
	if len(line.Events) != 1 || line.Events[0].Label != "iteration 1" || line.Events[0].At != 5 {
		t.Errorf("events = %+v", line.Events)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := Timeline{Rank: 0, Intervals: []Interval{{0, 10, Compute}, {10, 20, RecvBlocked}}, Finish: 20}
	if err := good.Validate(); err != nil {
		t.Fatalf("good timeline rejected: %v", err)
	}
	bad1 := Timeline{Intervals: []Interval{{10, 5, Compute}}, Finish: 20}
	if bad1.Validate() == nil {
		t.Error("End<Start not caught")
	}
	bad2 := Timeline{Intervals: []Interval{{0, 10, Compute}, {5, 20, Compute}}, Finish: 20}
	if bad2.Validate() == nil {
		t.Error("overlap not caught")
	}
	bad3 := Timeline{Intervals: []Interval{{0, 30, Compute}}, Finish: 20}
	if bad3.Validate() == nil {
		t.Error("interval past finish not caught")
	}
}

func TestSetValidate(t *testing.T) {
	s := Set{
		Total: 100,
		Lines: []Timeline{
			{Rank: 0, Intervals: []Interval{{0, 100, Compute}}, Finish: 100},
			{Rank: 1, Intervals: []Interval{{0, 50, Compute}}, Finish: 50},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Total = 80
	if s.Validate() == nil {
		t.Error("finish past total not caught")
	}
}

func TestStateDurationsMatchesFinish(t *testing.T) {
	// StateDurations(now) must report exactly what Finish(now).TimeIn would,
	// for random transition sequences, including the still-open interval.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(0)
		now := units.Time(0)
		b.Enter(0, Compute)
		for i := 0; i < 40; i++ {
			now = now.Add(units.Duration(rng.Intn(20)))
			b.Enter(now, State(rng.Intn(NumStates)))
		}
		now = now.Add(units.Duration(rng.Intn(20)))
		got := b.StateDurations(now)
		line := b.Finish(now)
		for s := State(0); int(s) < NumStates; s++ {
			if got[s] != line.TimeIn(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStateDurationsDoesNotDisturbBuilder(t *testing.T) {
	b := NewBuilder(0)
	b.Enter(0, Compute)
	b.Enter(10, RecvBlocked)
	d := b.StateDurations(25)
	if d[Compute] != 10 || d[RecvBlocked] != 15 {
		t.Errorf("StateDurations = %v", d)
	}
	// The builder keeps recording: the open recv interval extends past the
	// summary instant.
	line := b.Finish(40)
	if got := line.TimeIn(RecvBlocked); got != 30 {
		t.Errorf("TimeIn(RecvBlocked) after summary = %v, want 30", got)
	}
}

func TestPropertyBuilderAlwaysValid(t *testing.T) {
	// Any monotone sequence of Enter calls yields a valid timeline whose
	// intervals exactly tile [first, finish) with no gaps.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(0)
		now := units.Time(0)
		b.Enter(0, Compute)
		for i := 0; i < 50; i++ {
			now = now.Add(units.Duration(rng.Intn(20))) // may be zero
			b.Enter(now, State(rng.Intn(NumStates)))
		}
		now = now.Add(units.Duration(rng.Intn(20)))
		line := b.Finish(now)
		if line.Validate() != nil {
			return false
		}
		// Gap-free tiling.
		cursor := units.Time(0)
		for _, iv := range line.Intervals {
			if iv.Start != cursor {
				return false
			}
			cursor = iv.End
		}
		// Total time in all states equals the finish time.
		var sum units.Duration
		for s := State(0); int(s) < NumStates; s++ {
			sum += line.TimeIn(s)
		}
		return sum == units.Duration(now)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package trace

import (
	"fmt"
	"slices"
	"sync"
)

// edge identifies a directed point-to-point message class for matching.
type edge struct {
	src, dst, tag int
	size          int64
}

// Request-state bits for the per-rank request map.
const (
	reqPosted uint8 = 1 << iota
	reqWaited
)

// validateScratch holds the working storage of one Validate call. Scratch
// objects are pooled and their maps and slices cleared rather than
// reallocated, so validating inside the replay hot path (every Simulate
// call revalidates its input) settles to zero steady-state allocation.
type validateScratch struct {
	sends, recvs map[edge]int
	reqs         map[int]uint8 // per-rank posted/waited bits
	keys         []edge
	colls        []Record // rank 0's collective sequence, the reference
}

var validatePool = sync.Pool{New: func() any {
	return &validateScratch{
		sends: map[edge]int{},
		recvs: map[edge]int{},
		reqs:  map[int]uint8{},
	}
}}

// Validate checks structural well-formedness of a trace set:
//
//   - rank indices match trace positions, peers are in range, no self-sends
//     or self-receives;
//   - sizes and burst lengths are non-negative;
//   - Wait records reference a previously posted request, each at most once;
//   - the multiset of point-to-point sends equals the multiset of receives
//     (matched by src, dst, tag, size);
//   - every rank executes the same sequence of collectives (operation, size
//     and root must agree position by position).
//
// It returns nil when the set is consistent, otherwise an error describing
// the first few problems found. Valid sets are checked without formatting
// work: problem locations are rendered only when a problem exists.
func Validate(s *Set) error {
	sc := validatePool.Get().(*validateScratch)
	defer validatePool.Put(sc)
	clear(sc.sends)
	clear(sc.recvs)
	sc.colls = sc.colls[:0]

	var problems []string
	addf := func(format string, args ...any) {
		if len(problems) < 16 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	// where renders a problem location; it runs only on invalid input, so
	// the hot (valid) path never formats.
	where := func(i, j int, r Record) string {
		return fmt.Sprintf("rank %d record %d (%s)", i, j, r)
	}

	for i := range s.Traces {
		t := &s.Traces[i]
		if t.Rank != i {
			addf("trace %d has rank %d", i, t.Rank)
		}
		clear(sc.reqs)
		ncolls := 0
		for j, r := range t.Records {
			switch r.Kind {
			case KindBurst:
				if r.Instr < 0 {
					addf("%s: negative burst", where(i, j, r))
				}
			case KindSend, KindISend:
				if r.Peer < 0 || r.Peer >= s.NRanks() {
					addf("%s: peer out of range", where(i, j, r))
					continue
				}
				if r.Peer == i {
					addf("%s: self-send", where(i, j, r))
				}
				if r.Size < 0 {
					addf("%s: negative size", where(i, j, r))
				}
				sc.sends[edge{i, r.Peer, r.Tag, int64(r.Size)}]++
				if r.Kind == KindISend {
					if sc.reqs[r.Req]&reqPosted != 0 {
						addf("%s: duplicate request id %d", where(i, j, r), r.Req)
					}
					sc.reqs[r.Req] |= reqPosted
				}
			case KindRecv, KindIRecv:
				if r.Peer < 0 || r.Peer >= s.NRanks() {
					addf("%s: peer out of range", where(i, j, r))
					continue
				}
				if r.Peer == i {
					addf("%s: self-receive", where(i, j, r))
				}
				if r.Size < 0 {
					addf("%s: negative size", where(i, j, r))
				}
				sc.recvs[edge{r.Peer, i, r.Tag, int64(r.Size)}]++
				if r.Kind == KindIRecv {
					if sc.reqs[r.Req]&reqPosted != 0 {
						addf("%s: duplicate request id %d", where(i, j, r), r.Req)
					}
					sc.reqs[r.Req] |= reqPosted
				}
			case KindWait:
				if sc.reqs[r.Req]&reqPosted == 0 {
					addf("%s: wait for unposted request %d", where(i, j, r), r.Req)
				}
				if sc.reqs[r.Req]&reqWaited != 0 {
					addf("%s: request %d waited twice", where(i, j, r), r.Req)
				}
				sc.reqs[r.Req] |= reqWaited
			case KindCollective:
				if r.Root < 0 || r.Root >= s.NRanks() {
					addf("%s: root out of range", where(i, j, r))
				}
				if r.Size < 0 {
					addf("%s: negative size", where(i, j, r))
				}
				// Rank 0's sequence is the reference; later ranks compare
				// against it in stream order instead of storing their own.
				if i == 0 {
					sc.colls = append(sc.colls, r)
				} else if ncolls < len(sc.colls) {
					ref := sc.colls[ncolls]
					if r.Coll != ref.Coll || r.Root != ref.Root || r.Size != ref.Size {
						addf("rank %d collective %d is %s size %d root %d, rank 0 has %s size %d root %d",
							i, ncolls, r.Coll, int64(r.Size), r.Root, ref.Coll, int64(ref.Size), ref.Root)
					}
				}
				ncolls++
			case KindMarker:
				// always fine
			default:
				addf("%s: unknown kind", where(i, j, r))
			}
		}
		if i > 0 && ncolls != len(sc.colls) {
			addf("rank %d executes %d collectives, rank 0 executes %d", i, ncolls, len(sc.colls))
		}
	}

	// Point-to-point matching.
	sc.keys = sc.keys[:0]
	for k := range sc.sends {
		sc.keys = append(sc.keys, k)
	}
	for k := range sc.recvs {
		if _, dup := sc.sends[k]; !dup {
			sc.keys = append(sc.keys, k)
		}
	}
	keys := sc.keys
	slices.SortFunc(keys, func(ka, kb edge) int {
		if ka.src != kb.src {
			return ka.src - kb.src
		}
		if ka.dst != kb.dst {
			return ka.dst - kb.dst
		}
		if ka.tag != kb.tag {
			return ka.tag - kb.tag
		}
		switch {
		case ka.size < kb.size:
			return -1
		case ka.size > kb.size:
			return 1
		}
		return 0
	})
	for _, k := range keys {
		if sc.sends[k] != sc.recvs[k] {
			addf("p2p mismatch %d->%d tag %d size %d: %d sends, %d recvs",
				k.src, k.dst, k.tag, k.size, sc.sends[k], sc.recvs[k])
		}
	}

	if len(problems) == 0 {
		return nil
	}
	msg := problems[0]
	for _, p := range problems[1:] {
		msg += "; " + p
	}
	return fmt.Errorf("trace: invalid set %q/%q: %s", s.Name, s.Variant, msg)
}

package trace

import (
	"fmt"
	"sort"
)

// Validate checks structural well-formedness of a trace set:
//
//   - rank indices match trace positions, peers are in range, no self-sends;
//   - sizes and burst lengths are non-negative;
//   - Wait records reference a previously posted request, each at most once;
//   - the multiset of point-to-point sends equals the multiset of receives
//     (matched by src, dst, tag, size);
//   - every rank executes the same sequence of collectives (operation, size
//     and root must agree position by position).
//
// It returns nil when the set is consistent, otherwise an error describing
// the first few problems found.
func Validate(s *Set) error {
	var problems []string
	addf := func(format string, args ...any) {
		if len(problems) < 16 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}

	type edge struct {
		src, dst, tag int
		size          int64
	}
	sends := map[edge]int{}
	recvs := map[edge]int{}
	var collSeqs [][]Record

	for i := range s.Traces {
		t := &s.Traces[i]
		if t.Rank != i {
			addf("trace %d has rank %d", i, t.Rank)
		}
		posted := map[int]bool{}
		waited := map[int]bool{}
		var colls []Record
		for j, r := range t.Records {
			where := fmt.Sprintf("rank %d record %d (%s)", i, j, r)
			switch r.Kind {
			case KindBurst:
				if r.Instr < 0 {
					addf("%s: negative burst", where)
				}
			case KindSend, KindISend:
				if r.Peer < 0 || r.Peer >= s.NRanks() {
					addf("%s: peer out of range", where)
					continue
				}
				if r.Peer == i {
					addf("%s: self-send", where)
				}
				if r.Size < 0 {
					addf("%s: negative size", where)
				}
				sends[edge{i, r.Peer, r.Tag, int64(r.Size)}]++
				if r.Kind == KindISend {
					if posted[r.Req] {
						addf("%s: duplicate request id %d", where, r.Req)
					}
					posted[r.Req] = true
				}
			case KindRecv, KindIRecv:
				if r.Peer < 0 || r.Peer >= s.NRanks() {
					addf("%s: peer out of range", where)
					continue
				}
				if r.Size < 0 {
					addf("%s: negative size", where)
				}
				recvs[edge{r.Peer, i, r.Tag, int64(r.Size)}]++
				if r.Kind == KindIRecv {
					if posted[r.Req] {
						addf("%s: duplicate request id %d", where, r.Req)
					}
					posted[r.Req] = true
				}
			case KindWait:
				if !posted[r.Req] {
					addf("%s: wait for unposted request %d", where, r.Req)
				}
				if waited[r.Req] {
					addf("%s: request %d waited twice", where, r.Req)
				}
				waited[r.Req] = true
			case KindCollective:
				if r.Root < 0 || r.Root >= s.NRanks() {
					addf("%s: root out of range", where)
				}
				colls = append(colls, r)
			case KindMarker:
				// always fine
			default:
				addf("%s: unknown kind", where)
			}
		}
		collSeqs = append(collSeqs, colls)
	}

	// Point-to-point matching.
	keys := make([]edge, 0, len(sends)+len(recvs))
	for k := range sends {
		keys = append(keys, k)
	}
	for k := range recvs {
		if _, dup := sends[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.src != kb.src {
			return ka.src < kb.src
		}
		if ka.dst != kb.dst {
			return ka.dst < kb.dst
		}
		if ka.tag != kb.tag {
			return ka.tag < kb.tag
		}
		return ka.size < kb.size
	})
	for _, k := range keys {
		if sends[k] != recvs[k] {
			addf("p2p mismatch %d->%d tag %d size %d: %d sends, %d recvs",
				k.src, k.dst, k.tag, k.size, sends[k], recvs[k])
		}
	}

	// Collective agreement across ranks.
	if len(collSeqs) > 0 {
		ref := collSeqs[0]
		for rank := 1; rank < len(collSeqs); rank++ {
			seq := collSeqs[rank]
			if len(seq) != len(ref) {
				addf("rank %d executes %d collectives, rank 0 executes %d", rank, len(seq), len(ref))
				continue
			}
			for j := range seq {
				if seq[j].Coll != ref[j].Coll || seq[j].Root != ref[j].Root {
					addf("rank %d collective %d is %s root %d, rank 0 has %s root %d",
						rank, j, seq[j].Coll, seq[j].Root, ref[j].Coll, ref[j].Root)
				}
			}
		}
	}

	if len(problems) == 0 {
		return nil
	}
	msg := problems[0]
	for _, p := range problems[1:] {
		msg += "; " + p
	}
	return fmt.Errorf("trace: invalid set %q/%q: %s", s.Name, s.Variant, msg)
}

package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReadFileRoundTrip(t *testing.T) {
	s := NewSet("toy app", "original", 2, 1000)
	s.Traces[0].Append(Burst(100), Send(1, 3, 4096), Burst(50))
	s.Traces[1].Append(Burst(20), Recv(0, 3, 4096), Marker("phase one"))

	path := filepath.Join(t.TempDir(), "toy.trace")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want, have bytes.Buffer
	if err := Write(&want, s); err != nil {
		t.Fatal(err)
	}
	if err := Write(&have, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Errorf("round trip differs:\n%s\n---\n%s", want.String(), have.String())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	// After WriteFile no temp files remain beside the target, so a reader
	// scanning the directory (the sweep trace cache) sees only complete
	// entries.
	dir := t.TempDir()
	s := NewSet("toy", "original", 1, 1000)
	s.Traces[0].Append(Burst(1))
	if err := WriteFile(filepath.Join(dir, "a.trace"), s); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "a.trace" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after WriteFile: %v", names)
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope.trace"))
	if !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist error, got %v", err)
	}
}

package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile encodes the set to path in the text format. The write is
// atomic — encode to a temporary file in the same directory, then rename —
// so concurrent writers (sibling sweep shards warming one cache directory)
// can never expose a torn file to readers.
func WriteFile(path string, s *Set) error {
	if err := WriteFileAtomic(path, func(w io.Writer) error { return Write(w, s) }); err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}

// WriteFileAtomic runs the encoder against a temporary file in path's
// directory and renames it into place, so readers see either the old
// content or the complete new content, never a torn write. It is the
// atomicity primitive behind WriteFile, shared with the sweep layer's
// cache files.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile decodes a set from a file written by WriteFile (or Write).
func ReadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("trace: read %s: %w", path, err)
	}
	return s, nil
}

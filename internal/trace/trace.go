package trace

import (
	"fmt"

	"overlapsim/internal/units"
)

// Kind enumerates record types.
type Kind uint8

// Record kinds.
const (
	// KindBurst is a computation burst of Record.Instr instructions.
	KindBurst Kind = iota
	// KindSend is a blocking send of Size bytes to Peer with Tag.
	KindSend
	// KindRecv is a blocking receive of Size bytes from Peer with Tag.
	KindRecv
	// KindISend is a non-blocking send; Req names the rank-local request.
	KindISend
	// KindIRecv is a non-blocking receive posting; Req names the request.
	KindIRecv
	// KindWait blocks until the transfer of request Req completes.
	KindWait
	// KindCollective is a global operation involving every rank.
	KindCollective
	// KindMarker is a zero-cost annotation (phase label) for visualization.
	KindMarker
)

var kindNames = [...]string{
	KindBurst:      "burst",
	KindSend:       "send",
	KindRecv:       "recv",
	KindISend:      "isend",
	KindIRecv:      "irecv",
	KindWait:       "wait",
	KindCollective: "collective",
	KindMarker:     "marker",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Collective enumerates the global operations the replayer models.
type Collective uint8

// Collective operations.
const (
	Barrier Collective = iota
	Bcast
	Reduce
	Allreduce
	Allgather
	Alltoall
)

var collNames = [...]string{
	Barrier:   "barrier",
	Bcast:     "bcast",
	Reduce:    "reduce",
	Allreduce: "allreduce",
	Allgather: "allgather",
	Alltoall:  "alltoall",
}

// String returns the lowercase name of the collective.
func (c Collective) String() string {
	if int(c) < len(collNames) {
		return collNames[c]
	}
	return fmt.Sprintf("collective(%d)", uint8(c))
}

// ParseCollective is the inverse of Collective.String.
func ParseCollective(s string) (Collective, error) {
	for i, n := range collNames {
		if n == s {
			return Collective(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown collective %q", s)
}

// Record is one trace entry. Only the fields relevant to Kind are
// meaningful; the rest are zero.
type Record struct {
	Kind  Kind
	Instr int64       // KindBurst: burst length in instructions
	Peer  int         // p2p kinds: the other rank
	Tag   int         // p2p kinds: message tag
	Size  units.Bytes // p2p and collective kinds: payload size
	Req   int         // ISend/IRecv/Wait: rank-local request id
	Coll  Collective  // KindCollective
	Root  int         // KindCollective: root rank for rooted operations
	Phase string      // KindMarker: phase label
}

// String renders the record in the codec's line syntax (without rank).
func (r Record) String() string {
	switch r.Kind {
	case KindBurst:
		return fmt.Sprintf("C %d", r.Instr)
	case KindSend:
		return fmt.Sprintf("S %d %d %d", r.Peer, r.Tag, int64(r.Size))
	case KindRecv:
		return fmt.Sprintf("R %d %d %d", r.Peer, r.Tag, int64(r.Size))
	case KindISend:
		return fmt.Sprintf("IS %d %d %d %d", r.Peer, r.Tag, int64(r.Size), r.Req)
	case KindIRecv:
		return fmt.Sprintf("IR %d %d %d %d", r.Peer, r.Tag, int64(r.Size), r.Req)
	case KindWait:
		return fmt.Sprintf("W %d", r.Req)
	case KindCollective:
		return fmt.Sprintf("G %s %d %d", r.Coll, int64(r.Size), r.Root)
	case KindMarker:
		return fmt.Sprintf("M %q", r.Phase)
	default:
		return fmt.Sprintf("? kind=%d", r.Kind)
	}
}

// Burst constructs a computation record.
func Burst(instr int64) Record { return Record{Kind: KindBurst, Instr: instr} }

// Send constructs a blocking send record.
func Send(peer, tag int, size units.Bytes) Record {
	return Record{Kind: KindSend, Peer: peer, Tag: tag, Size: size}
}

// Recv constructs a blocking receive record.
func Recv(peer, tag int, size units.Bytes) Record {
	return Record{Kind: KindRecv, Peer: peer, Tag: tag, Size: size}
}

// ISend constructs a non-blocking send record.
func ISend(peer, tag int, size units.Bytes, req int) Record {
	return Record{Kind: KindISend, Peer: peer, Tag: tag, Size: size, Req: req}
}

// IRecv constructs a non-blocking receive record.
func IRecv(peer, tag int, size units.Bytes, req int) Record {
	return Record{Kind: KindIRecv, Peer: peer, Tag: tag, Size: size, Req: req}
}

// Wait constructs a wait-for-request record.
func Wait(req int) Record { return Record{Kind: KindWait, Req: req} }

// Global constructs a collective record.
func Global(coll Collective, size units.Bytes, root int) Record {
	return Record{Kind: KindCollective, Coll: coll, Size: size, Root: root}
}

// Marker constructs a phase-label record.
func Marker(phase string) Record { return Record{Kind: KindMarker, Phase: phase} }

// Trace is the record sequence of a single rank.
type Trace struct {
	Rank    int
	Records []Record
}

// Append adds records, merging consecutive bursts and dropping empty ones
// so that traces stay canonical regardless of how they were produced.
func (t *Trace) Append(recs ...Record) {
	for _, r := range recs {
		if r.Kind == KindBurst {
			if r.Instr < 0 {
				r.Instr = 0
			}
			if n := len(t.Records); n > 0 && t.Records[n-1].Kind == KindBurst {
				t.Records[n-1].Instr += r.Instr
				continue
			}
			if r.Instr == 0 {
				continue
			}
		}
		t.Records = append(t.Records, r)
	}
}

// TotalInstructions sums the burst lengths of the trace.
func (t *Trace) TotalInstructions() int64 {
	var total int64
	for _, r := range t.Records {
		if r.Kind == KindBurst {
			total += r.Instr
		}
	}
	return total
}

// Set is a complete multi-rank trace: the unit the replayer consumes.
type Set struct {
	Name    string     // application name, e.g. "sweep3d"
	Variant string     // e.g. "original", "overlap-real", "overlap-linear"
	MIPS    units.MIPS // instruction-to-time scale observed in the real run
	Traces  []Trace    // index i holds rank i
}

// NewSet allocates a set with nranks empty traces.
func NewSet(name, variant string, nranks int, mips units.MIPS) *Set {
	s := &Set{Name: name, Variant: variant, MIPS: mips}
	s.Traces = make([]Trace, nranks)
	for i := range s.Traces {
		s.Traces[i].Rank = i
	}
	return s
}

// NRanks returns the number of ranks in the set.
func (s *Set) NRanks() int { return len(s.Traces) }

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{Name: s.Name, Variant: s.Variant, MIPS: s.MIPS}
	out.Traces = make([]Trace, len(s.Traces))
	for i, t := range s.Traces {
		out.Traces[i].Rank = t.Rank
		out.Traces[i].Records = append([]Record(nil), t.Records...)
	}
	return out
}

package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceRoundTrip checks the codec's core contract on arbitrary bytes:
// anything Read accepts must survive Write → Read unchanged. The seed corpus
// in testdata/fuzz mixes tracegen output with hand-truncated and corrupted
// variants so plain `go test` exercises the interesting shapes too.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte("H 2 1000 \"a\" \"o\"\nT 0\nC 10\nS 1 0 64\nT 1\nC 10\nR 0 0 64\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("Write failed on a set Read accepted: %v", err)
		}
		s2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Read failed: %v\nencoded:\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the set:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
	})
}

// FuzzValidate checks that Validate and Stats never panic on any set the
// codec decodes, however inconsistent.
func FuzzValidate(f *testing.F) {
	f.Add([]byte("H 2 1000 \"a\" \"o\"\nT 0\nS 1 0 64\nG barrier 0 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = Validate(s) // error or nil, never a panic
		_ = Stats(s)
	})
}

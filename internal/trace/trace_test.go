package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"overlapsim/internal/units"
)

// pingPongSet builds a tiny valid two-rank trace used across tests.
func pingPongSet() *Set {
	s := NewSet("pingpong", "original", 2, 1000)
	s.Traces[0].Append(
		Marker("iter"),
		Burst(5000),
		Send(1, 7, 4096),
		Recv(1, 8, 4096),
		Burst(2000),
	)
	s.Traces[1].Append(
		Marker("iter"),
		Burst(3000),
		Recv(0, 7, 4096),
		Send(0, 8, 4096),
		Burst(4000),
	)
	return s
}

func TestKindAndCollectiveStrings(t *testing.T) {
	if KindBurst.String() != "burst" || KindISend.String() != "isend" {
		t.Error("kind names wrong")
	}
	if Allreduce.String() != "allreduce" {
		t.Error("collective names wrong")
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind string = %q", got)
	}
	c, err := ParseCollective("alltoall")
	if err != nil || c != Alltoall {
		t.Errorf("ParseCollective(alltoall) = %v, %v", c, err)
	}
	if _, err := ParseCollective("nope"); err == nil {
		t.Error("ParseCollective(nope): expected error")
	}
}

func TestAppendMergesBursts(t *testing.T) {
	var tr Trace
	tr.Append(Burst(100), Burst(200), Send(1, 0, 8), Burst(0), Burst(50))
	if len(tr.Records) != 3 {
		t.Fatalf("got %d records, want 3: %v", len(tr.Records), tr.Records)
	}
	if tr.Records[0].Instr != 300 {
		t.Errorf("merged burst = %d, want 300", tr.Records[0].Instr)
	}
	if tr.Records[2].Instr != 50 {
		t.Errorf("trailing burst = %d, want 50", tr.Records[2].Instr)
	}
	if tr.TotalInstructions() != 350 {
		t.Errorf("TotalInstructions = %d, want 350", tr.TotalInstructions())
	}
}

func TestAppendDropsEmptyAndNegativeBursts(t *testing.T) {
	var tr Trace
	tr.Append(Burst(0), Burst(-5))
	if len(tr.Records) != 0 {
		t.Errorf("empty bursts should be dropped, got %v", tr.Records)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := NewSet("app with spaces", "overlap-real", 3, 1234.5)
	s.Traces[0].Append(
		Burst(10),
		ISend(1, 3, 512, 1),
		ISend(2, 3, 512, 2),
		Burst(20),
		Wait(1),
		Global(Allreduce, 8, 0),
		Marker(`phase "x"`),
	)
	s.Traces[1].Append(Burst(5), IRecv(0, 3, 512, 9), Wait(9))
	s.Traces[2].Append(Recv(0, 3, 512), Burst(7))

	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\nencoded:\n%s", err, buf.String())
	}
	if got.Name != s.Name || got.Variant != s.Variant || got.MIPS != s.MIPS {
		t.Errorf("header mismatch: got %q/%q/%v", got.Name, got.Variant, got.MIPS)
	}
	if !reflect.DeepEqual(got.Traces, s.Traces) {
		t.Errorf("traces differ\n got: %+v\nwant: %+v", got.Traces, s.Traces)
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"no header", "T 0\nC 10\n"},
		{"record before rank", "H 1 100 \"a\" \"b\"\nC 10\n"},
		{"rank out of range", "H 1 100 \"a\" \"b\"\nT 5\n"},
		{"bad record", "H 1 100 \"a\" \"b\"\nT 0\nX 1 2\n"},
		{"short send", "H 1 100 \"a\" \"b\"\nT 0\nS 1\n"},
		{"bad collective", "H 1 100 \"a\" \"b\"\nT 0\nG nope 8 0\n"},
		{"duplicate header", "H 1 100 \"a\" \"b\"\nH 1 100 \"a\" \"b\"\n"},
		{"bad mips", "H 1 xx \"a\" \"b\"\n"},
		{"unterminated quote", "H 1 100 \"a \"b\"\nT 0\nM \"oops\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: expected decode error", c.name)
		}
	}
}

func TestCodecIgnoresCommentsAndBlank(t *testing.T) {
	in := "# hello\n\nH 1 100 \"a\" \"b\"\n# mid\nT 0\n\nC 42\n"
	s, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Traces[0].Records[0].Instr != 42 {
		t.Errorf("got %+v", s.Traces[0].Records)
	}
}

func TestValidateAcceptsGoodSet(t *testing.T) {
	if err := Validate(pingPongSet()); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	build := func(mutate func(*Set)) *Set {
		s := pingPongSet()
		mutate(s)
		return s
	}
	cases := []struct {
		name string
		set  *Set
		want string
	}{
		{"unmatched send", build(func(s *Set) {
			s.Traces[0].Append(Send(1, 99, 64))
		}), "p2p mismatch"},
		{"self send", build(func(s *Set) {
			s.Traces[0].Append(Send(0, 1, 64))
		}), "self-send"},
		{"peer range", build(func(s *Set) {
			s.Traces[0].Append(Send(9, 1, 64))
		}), "peer out of range"},
		{"negative burst", build(func(s *Set) {
			s.Traces[0].Records = append(s.Traces[0].Records, Record{Kind: KindBurst, Instr: -1})
		}), "negative burst"},
		{"wait unposted", build(func(s *Set) {
			s.Traces[0].Append(Wait(42))
		}), "unposted"},
		{"double wait", build(func(s *Set) {
			s.Traces[0].Append(ISend(1, 5, 8, 1), Wait(1), Wait(1))
			s.Traces[1].Append(Recv(0, 5, 8))
		}), "waited twice"},
		{"collective divergence", build(func(s *Set) {
			s.Traces[0].Append(Global(Barrier, 0, 0))
		}), "collectives"},
		{"collective root divergence", build(func(s *Set) {
			s.Traces[0].Append(Global(Bcast, 8, 0))
			s.Traces[1].Append(Global(Bcast, 8, 1))
		}), "root"},
	}
	for _, c := range cases {
		err := Validate(c.set)
		if err == nil {
			t.Errorf("%s: expected validation error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestStats(t *testing.T) {
	s := pingPongSet()
	st := Stats(s)
	if st.Instructions != 14000 {
		t.Errorf("Instructions = %d, want 14000", st.Instructions)
	}
	if st.Bytes != 8192 {
		t.Errorf("Bytes = %d, want 8192", st.Bytes)
	}
	if st.Messages != 2 {
		t.Errorf("Messages = %d, want 2", st.Messages)
	}
	if st.MaxRankInstr != 7000 {
		t.Errorf("MaxRankInstr = %d, want 7000", st.MaxRankInstr)
	}
	// 7000 instructions at 1000 MIPS = 7 microseconds.
	if st.ComputeTime != 7*units.Microsecond {
		t.Errorf("ComputeTime = %v, want 7us", st.ComputeTime)
	}
	if st.MeanMsgSize != 4096 || st.LargestMsg != 4096 || st.SmallestMsg != 4096 {
		t.Errorf("message size stats wrong: %+v", st)
	}
	if st.Ranks[0].MessagesSent != 1 || st.Ranks[0].BytesSent != 4096 {
		t.Errorf("rank stats wrong: %+v", st.Ranks[0])
	}
}

func TestStatsEmptySet(t *testing.T) {
	st := Stats(NewSet("empty", "original", 2, 100))
	if st.Bytes != 0 || st.Messages != 0 || st.SmallestMsg != 0 || st.ComputeTime != 0 {
		t.Errorf("empty set stats: %+v", st)
	}
}

func TestClone(t *testing.T) {
	s := pingPongSet()
	c := s.Clone()
	c.Traces[0].Records[1].Instr = 999999
	c.Name = "other"
	if s.Traces[0].Records[1].Instr == 999999 || s.Name == "other" {
		t.Error("Clone is not deep")
	}
}

// randomSet builds a structurally valid random trace set for property tests.
func randomSet(rng *rand.Rand) *Set {
	nranks := rng.Intn(4) + 2
	s := NewSet("prop", "original", nranks, units.MIPS(rng.Intn(2000)+1))
	// Generate matched pairs of sends/recvs plus shared collectives.
	for pair := 0; pair < rng.Intn(20); pair++ {
		src := rng.Intn(nranks)
		dst := rng.Intn(nranks)
		if src == dst {
			continue
		}
		size := units.Bytes(rng.Intn(1 << 16))
		tag := rng.Intn(8)
		s.Traces[src].Append(Burst(int64(rng.Intn(10000))), Send(dst, tag, size))
		s.Traces[dst].Append(Burst(int64(rng.Intn(10000))), Recv(src, tag, size))
	}
	for c := 0; c < rng.Intn(3); c++ {
		sz := units.Bytes(rng.Intn(1024))
		for r := 0; r < nranks; r++ {
			s.Traces[r].Append(Global(Allreduce, sz, 0))
		}
	}
	return s
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSet(rng)
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRandomSetsValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return Validate(randomSet(rng)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package trace defines the Dimemas-like trace format that connects the
// tracing tool to the replay simulator — the interchange at the center of
// the trace → variant → replay pipeline.
//
// A trace is a per-rank sequence of records of two fundamental kinds, just
// as in the paper (section II-B): computation records carrying the length
// of a computation burst in instructions, and communication records
// carrying message parameters. Overlapped (potential) traces additionally
// use non-blocking records (ISend/IRecv/Wait) so that partial transfers
// can be injected at the points where data is produced or first needed.
// Timestamps are instruction counts scaled by a MIPS rate at replay time,
// the paper's deliberate abstraction from cache and MPI-overhead effects.
//
// A Set is the complete multi-rank trace the replayer consumes, tagged
// with the application name and a variant label ("original" for the
// untransformed execution, "overlap-<pattern>-<mechanisms>-c<chunks>" for
// transformed ones — the same labels the sweep layer uses as cache keys).
//
// The package also owns the textual codec (Write/Read and the atomic
// WriteFile/ReadFile): a line-oriented, diffable format that makes traces
// portable across processes. The sweep layer's persistent trace cache and
// the tracegen/dimemas command-line round trip are built on it. Producers
// should build traces through Trace.Append, which canonicalizes by merging
// adjacent computation bursts and dropping empty ones, so that equal
// executions encode to byte-equal files.
package trace

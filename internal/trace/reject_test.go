package trace

import (
	"strings"
	"testing"
)

// Pathological inputs the fuzz harness hunts for must come back as precise
// diagnostics, never as panics or absurd allocations: one test case per
// codec rejection.
func TestReadRejectsPathologicalHeaders(t *testing.T) {
	cases := []struct {
		name, in, frag string
	}{
		{"huge rank count", `H 999999999 1000 "a" "o"`, "rank count exceeds the limit"},
		{"zero MIPS", `H 2 0 "a" "o"`, "bad MIPS"},
		{"negative MIPS", `H 2 -5 "a" "o"`, "bad MIPS"},
		{"NaN MIPS", `H 2 NaN "a" "o"`, "bad MIPS"},
		{"infinite MIPS", `H 2 +Inf "a" "o"`, "bad MIPS"},
		{"short header", `H 2 1000`, "short header"},
		{"unterminated name", `H 2 1000 "a b`, "bad name"},
		{"missing variant", `H 2 1000 "a" oops`, "bad variant"},
		{"duplicate header", "H 2 1000 \"a\" \"o\"\nH 2 1000 \"a\" \"o\"", "duplicate header"},
		{"no header", `T 0`, "record before header"},
		{"empty input", ``, "empty input"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: Read accepted %q", c.name, c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestReadRejectsPathologicalRecords(t *testing.T) {
	hdr := "H 2 1000 \"a\" \"o\"\n"
	cases := []struct {
		name, in, frag string
	}{
		{"rank out of range", hdr + "T 2", "rank out of range"},
		{"negative rank", hdr + "T -1", "rank out of range"},
		{"record before rank", hdr + "C 5", "record before rank line"},
		{"unknown record", hdr + "T 0\nX 1 2 3", "unknown record"},
		{"short send", hdr + "T 0\nS 1 0", `wants 3 args`},
		{"bad integer", hdr + "T 0\nC five", "bad integer"},
		{"bad collective", hdr + "T 0\nG dance 0 0", "unknown collective"},
		{"bad marker", hdr + "T 0\nM unquoted", "bad marker"},
		{"integer overflow", hdr + "T 0\nC 99999999999999999999", "bad integer"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: Read accepted %q", c.name, c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

// validateCase builds a 2-rank set and lets the test mutate it into one
// precise inconsistency.
func validateCase(mut func(*Set)) *Set {
	s := NewSet("app", "original", 2, 1000)
	s.Traces[0].Records = []Record{Burst(10), Send(1, 0, 64), Global(Barrier, 0, 0)}
	s.Traces[1].Records = []Record{Burst(10), Recv(0, 0, 64), Global(Barrier, 0, 0)}
	mut(s)
	return s
}

func TestValidateRejectsPerProblem(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Set)
		frag string
	}{
		{"self-receive", func(s *Set) {
			s.Traces[1].Records[1] = Recv(1, 0, 64)
			s.Traces[1].Records = append(s.Traces[1].Records, Send(1, 0, 64))
		}, "self-receive"},
		{"negative collective size", func(s *Set) {
			s.Traces[0].Records[2] = Global(Allreduce, -8, 0)
			s.Traces[1].Records[2] = Global(Allreduce, -8, 0)
		}, "negative size"},
		{"collective size mismatch", func(s *Set) {
			s.Traces[0].Records[2] = Global(Allreduce, 8, 0)
			s.Traces[1].Records[2] = Global(Allreduce, 16, 0)
		}, "rank 1 collective 0 is allreduce size 16"},
		{"collective op mismatch", func(s *Set) {
			s.Traces[1].Records[2] = Global(Bcast, 0, 0)
		}, "rank 1 collective 0 is bcast"},
		{"collective count mismatch", func(s *Set) {
			s.Traces[1].Records = s.Traces[1].Records[:2]
		}, "executes 0 collectives, rank 0 executes 1"},
		{"mismatched send/recv size", func(s *Set) {
			s.Traces[1].Records[1] = Recv(0, 0, 65)
		}, "p2p mismatch"},
		{"orphan send", func(s *Set) {
			s.Traces[1].Records[1] = Burst(1)
		}, "p2p mismatch 0->1 tag 0 size 64: 1 sends, 0 recvs"},
		{"negative burst", func(s *Set) {
			s.Traces[0].Records[0] = Record{Kind: KindBurst, Instr: -5}
		}, "negative burst"},
		{"wait unposted", func(s *Set) {
			s.Traces[0].Records = append(s.Traces[0].Records, Wait(7))
		}, "wait for unposted request 7"},
		{"root out of range", func(s *Set) {
			s.Traces[0].Records[2] = Global(Bcast, 0, 5)
			s.Traces[1].Records[2] = Global(Bcast, 0, 5)
		}, "root out of range"},
	}
	for _, c := range cases {
		err := Validate(validateCase(c.mut))
		if err == nil {
			t.Errorf("%s: Validate accepted the mutation", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
	// The unmutated base set is valid — the cases above fail for their
	// mutation, not a broken fixture.
	if err := Validate(validateCase(func(*Set) {})); err != nil {
		t.Fatalf("base fixture invalid: %v", err)
	}
}

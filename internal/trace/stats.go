package trace

import "overlapsim/internal/units"

// RankStats summarizes one rank's trace independently of any platform.
type RankStats struct {
	Rank          int
	Instructions  int64       // total computation, in instructions
	BytesSent     units.Bytes // point-to-point payload leaving the rank
	BytesReceived units.Bytes // point-to-point payload arriving at the rank
	MessagesSent  int
	MessagesRecvd int
	Collectives   int
	Records       int
}

// SetStats aggregates RankStats over a whole set.
type SetStats struct {
	Ranks         []RankStats
	Instructions  int64       // sum over ranks
	Bytes         units.Bytes // total point-to-point payload (counted once)
	Messages      int         // total point-to-point messages (counted once)
	Collectives   int         // per-rank collective entries
	MaxRankInstr  int64       // critical-path lower bound on computation
	ComputeTime   units.Duration
	LargestMsg    units.Bytes
	SmallestMsg   units.Bytes
	MeanMsgSize   units.Bytes
	RecordsTotal  int
	VariantName   string
	AppName       string
	NumberOfRanks int
}

// Stats computes summary statistics for the set. ComputeTime uses the set's
// MIPS rate and the maximum per-rank instruction count, which is the lower
// bound on runtime imposed by computation alone.
func Stats(s *Set) SetStats {
	out := SetStats{
		VariantName:   s.Variant,
		AppName:       s.Name,
		NumberOfRanks: s.NRanks(),
		SmallestMsg:   -1,
	}
	for i := range s.Traces {
		t := &s.Traces[i]
		rs := RankStats{Rank: t.Rank, Records: len(t.Records)}
		for _, r := range t.Records {
			switch r.Kind {
			case KindBurst:
				rs.Instructions += r.Instr
			case KindSend, KindISend:
				rs.BytesSent += r.Size
				rs.MessagesSent++
				if r.Size > out.LargestMsg {
					out.LargestMsg = r.Size
				}
				if out.SmallestMsg < 0 || r.Size < out.SmallestMsg {
					out.SmallestMsg = r.Size
				}
			case KindRecv, KindIRecv:
				rs.BytesReceived += r.Size
				rs.MessagesRecvd++
			case KindCollective:
				rs.Collectives++
			}
		}
		out.Ranks = append(out.Ranks, rs)
		out.Instructions += rs.Instructions
		out.Bytes += rs.BytesSent
		out.Messages += rs.MessagesSent
		out.Collectives += rs.Collectives
		out.RecordsTotal += rs.Records
		if rs.Instructions > out.MaxRankInstr {
			out.MaxRankInstr = rs.Instructions
		}
	}
	if out.SmallestMsg < 0 {
		out.SmallestMsg = 0
	}
	if out.Messages > 0 {
		out.MeanMsgSize = out.Bytes / units.Bytes(out.Messages)
	}
	out.ComputeTime = s.MIPS.BurstDuration(out.MaxRankInstr)
	return out
}

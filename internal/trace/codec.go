package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"overlapsim/internal/units"
)

// MaxRanks bounds the rank count a trace file may declare: far above any
// simulated platform, low enough that a corrupt header cannot make Read
// allocate gigabytes before the first record line is seen.
const MaxRanks = 1 << 16

// The text format, one record per line:
//
//	# comment
//	H <nranks> <mips> <name> <variant>      (header, exactly once, first)
//	T <rank>                                (start of a rank's record list)
//	C <instr>
//	S <peer> <tag> <size>
//	R <peer> <tag> <size>
//	IS <peer> <tag> <size> <req>
//	IR <peer> <tag> <size> <req>
//	W <req>
//	G <collective> <size> <root>
//	M <quoted phase>
//
// Name, variant and phase are Go-quoted so they may contain spaces.

// Write encodes the set to w in the text format.
func Write(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# overlapsim trace: %s (%s)\n", s.Name, s.Variant)
	fmt.Fprintf(bw, "H %d %g %s %s\n", s.NRanks(), float64(s.MIPS),
		strconv.Quote(s.Name), strconv.Quote(s.Variant))
	for i := range s.Traces {
		t := &s.Traces[i]
		fmt.Fprintf(bw, "T %d\n", t.Rank)
		for _, r := range t.Records {
			if _, err := fmt.Fprintln(bw, r.String()); err != nil {
				return fmt.Errorf("trace: write: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Read decodes a set from the text format.
func Read(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var set *Set
	var cur *Trace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op, args := fields[0], fields[1:]
		fail := func(msg string) error {
			return fmt.Errorf("trace: line %d: %s: %q", lineNo, msg, line)
		}
		if op == "H" {
			if set != nil {
				return nil, fail("duplicate header")
			}
			if len(args) < 4 {
				return nil, fail("short header")
			}
			nranks, err := strconv.Atoi(args[0])
			if err != nil || nranks <= 0 {
				return nil, fail("bad rank count")
			}
			if nranks > MaxRanks {
				return nil, fail(fmt.Sprintf("rank count exceeds the limit of %d", MaxRanks))
			}
			mips, err := strconv.ParseFloat(args[1], 64)
			if err != nil {
				return nil, fail("bad MIPS")
			}
			// A non-positive or non-finite rate would turn every burst into
			// a NaN/Inf timestamp downstream; reject it at the door.
			if !(mips > 0) || math.IsInf(mips, 1) {
				return nil, fail("bad MIPS (want a positive finite rate)")
			}
			// Name and variant are the two quoted strings at the end of the
			// line; re-split on quotes to tolerate embedded spaces.
			rest := line[strings.Index(line, args[2]):]
			name, rest2, err := unquoteFirst(rest)
			if err != nil {
				return nil, fail("bad name")
			}
			variant, _, err := unquoteFirst(rest2)
			if err != nil {
				return nil, fail("bad variant")
			}
			set = NewSet(name, variant, nranks, units.MIPS(mips))
			continue
		}
		if set == nil {
			return nil, fail("record before header")
		}
		if op == "T" {
			if len(args) != 1 {
				return nil, fail("bad rank line")
			}
			rank, err := strconv.Atoi(args[0])
			if err != nil || rank < 0 || rank >= set.NRanks() {
				return nil, fail("rank out of range")
			}
			cur = &set.Traces[rank]
			continue
		}
		if cur == nil {
			return nil, fail("record before rank line")
		}
		rec, err := parseRecord(op, args, line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		cur.Records = append(cur.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if set == nil {
		return nil, fmt.Errorf("trace: empty input (no header)")
	}
	return set, nil
}

// unquoteFirst extracts the leading Go-quoted string from s and returns it
// along with the remainder of s.
func unquoteFirst(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected quoted string in %q", s)
	}
	// Find the closing quote, honoring backslash escapes.
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			out, err := strconv.Unquote(s[:i+1])
			return out, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", s)
}

func parseRecord(op string, args []string, line string) (Record, error) {
	ints := func(n int) ([]int64, error) {
		if len(args) != n {
			return nil, fmt.Errorf("record %q wants %d args: %q", op, n, line)
		}
		out := make([]int64, n)
		for i, a := range args {
			v, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad integer %q: %q", a, line)
			}
			out[i] = v
		}
		return out, nil
	}
	switch op {
	case "C":
		v, err := ints(1)
		if err != nil {
			return Record{}, err
		}
		return Burst(v[0]), nil
	case "S", "R":
		v, err := ints(3)
		if err != nil {
			return Record{}, err
		}
		if op == "S" {
			return Send(int(v[0]), int(v[1]), units.Bytes(v[2])), nil
		}
		return Recv(int(v[0]), int(v[1]), units.Bytes(v[2])), nil
	case "IS", "IR":
		v, err := ints(4)
		if err != nil {
			return Record{}, err
		}
		if op == "IS" {
			return ISend(int(v[0]), int(v[1]), units.Bytes(v[2]), int(v[3])), nil
		}
		return IRecv(int(v[0]), int(v[1]), units.Bytes(v[2]), int(v[3])), nil
	case "W":
		v, err := ints(1)
		if err != nil {
			return Record{}, err
		}
		return Wait(int(v[0])), nil
	case "G":
		if len(args) != 3 {
			return Record{}, fmt.Errorf("collective wants 3 args: %q", line)
		}
		coll, err := ParseCollective(args[0])
		if err != nil {
			return Record{}, err
		}
		size, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad collective size: %q", line)
		}
		root, err := strconv.Atoi(args[2])
		if err != nil {
			return Record{}, fmt.Errorf("bad collective root: %q", line)
		}
		return Global(coll, units.Bytes(size), root), nil
	case "M":
		phase, _, err := unquoteFirst(strings.TrimPrefix(line, "M"))
		if err != nil {
			return Record{}, fmt.Errorf("bad marker: %q", line)
		}
		return Marker(phase), nil
	default:
		return Record{}, fmt.Errorf("unknown record %q: %q", op, line)
	}
}

package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestReaderNeverPanicsOnGarbage feeds the codec random byte soup and
// line-structured garbage: it must return errors, never panic.
func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Read panicked on %q: %v", data, r)
			}
		}()
		_, _ = Read(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReaderNeverPanicsOnMangledValid mutates a valid encoding in random
// ways — truncation, byte flips, line shuffles — and checks the decoder
// fails cleanly or returns a set, never panics.
func TestReaderNeverPanicsOnMangledValid(t *testing.T) {
	s := NewSet("victim", "original", 2, 1000)
	s.Traces[0].Append(Burst(100), ISend(1, 2, 512, 1), Global(Allreduce, 8, 0), Marker("m"))
	s.Traces[1].Append(Recv(0, 2, 512), Burst(50), Global(Allreduce, 8, 0))
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()

	f := func(seed int64) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Read panicked (seed %d): %v", seed, r)
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		data := []byte(valid)
		switch rng.Intn(3) {
		case 0: // truncate
			data = data[:rng.Intn(len(data))]
		case 1: // flip random bytes
			for i := 0; i < 5; i++ {
				data[rng.Intn(len(data))] = byte(rng.Intn(256))
			}
		default: // shuffle lines
			lines := strings.Split(valid, "\n")
			rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
			data = []byte(strings.Join(lines, "\n"))
		}
		_, _ = Read(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestValidateNeverPanicsOnDecoded runs Validate over anything the decoder
// accepts from mangled input: decoded-but-weird sets must be judged, not
// crash.
func TestValidateNeverPanicsOnDecoded(t *testing.T) {
	inputs := []string{
		"H 1 0 \"a\" \"b\"\nT 0\nC 0\n",
		"H 2 1e300 \"a\" \"b\"\nT 0\nS 1 0 9223372036854775807\nT 1\nR 0 0 9223372036854775807\n",
		"H 3 -5 \"x\" \"y\"\nT 2\nG barrier 0 2\nT 0\nG barrier 0 2\nT 1\nG barrier 0 2\n",
		"H 1 1 \"\" \"\"\nT 0\nM \"\"\n",
	}
	for _, in := range inputs {
		set, err := Read(strings.NewReader(in))
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Validate panicked on %q: %v", in, r)
				}
			}()
			_ = Validate(set)
			_ = Stats(set)
		}()
	}
}

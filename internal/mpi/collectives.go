package mpi

import (
	"fmt"
	"sync"
	"time"
)

// collSlot is the shared state of one collective invocation. Ranks find
// their slot via a per-rank sequence number, which works because every rank
// must execute the same sequence of collectives (MPI semantics; the trace
// validator enforces the same property on trace sets).
type collSlot struct {
	mu       sync.Mutex
	arrived  int
	contrib  [][]float64 // per-rank contribution, indexed by rank
	result   [][]float64 // per-rank result, indexed by rank
	finished chan struct{}
	compute  func(s *collSlot) // runs once when the last rank arrives
	err      error
}

// enterCollective synchronizes all ranks on the collective with the given
// per-rank sequence number and returns this rank's result slice.
func (w *World) enterCollective(rank, seq int, contribution []float64, compute func(*collSlot)) ([]float64, error) {
	w.collMu.Lock()
	slot, ok := w.collSlots[seq]
	if !ok {
		slot = &collSlot{
			contrib:  make([][]float64, w.n),
			result:   make([][]float64, w.n),
			finished: make(chan struct{}),
			compute:  compute,
		}
		w.collSlots[seq] = slot
	}
	w.collMu.Unlock()

	slot.mu.Lock()
	slot.contrib[rank] = append([]float64(nil), contribution...)
	slot.arrived++
	last := slot.arrived == w.n
	slot.mu.Unlock()

	if last {
		slot.compute(slot)
		close(slot.finished)
		w.collMu.Lock()
		delete(w.collSlots, seq)
		w.collMu.Unlock()
	} else {
		select {
		case <-slot.finished:
		case <-time.After(w.timeout):
			return nil, fmt.Errorf("%w (rank %d in collective %d)", ErrTimeout, rank, seq)
		}
	}
	if slot.err != nil {
		return nil, slot.err
	}
	return slot.result[rank], nil
}

// nextCollSeq returns and increments this rank's collective sequence
// number. Only the rank's own goroutine touches its slot, so no lock is
// needed.
func (r *Rank) nextCollSeq() int {
	s := r.world.collSeqs[r.id]
	r.world.collSeqs[r.id]++
	return s
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() error {
	_, err := r.world.enterCollective(r.id, r.nextCollSeq(), nil, func(s *collSlot) {})
	return err
}

// Bcast copies root's buf into every rank's buf. All ranks must pass
// equal-length buffers.
func (r *Rank) Bcast(root int, buf []float64) error {
	if root < 0 || root >= r.world.n {
		return fmt.Errorf("mpi: rank %d: bcast with invalid root %d", r.id, root)
	}
	res, err := r.world.enterCollective(r.id, r.nextCollSeq(), buf, func(s *collSlot) {
		src := s.contrib[root]
		for i := range s.result {
			if len(s.contrib[i]) != len(src) {
				s.err = fmt.Errorf("mpi: bcast buffer length mismatch: rank %d has %d, root has %d", i, len(s.contrib[i]), len(src))
				return
			}
			s.result[i] = src
		}
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

// sumInto accumulates elementwise sums of all contributions.
func sumContrib(s *collSlot) ([]float64, error) {
	n := len(s.contrib[0])
	for i := range s.contrib {
		if len(s.contrib[i]) != n {
			return nil, fmt.Errorf("mpi: reduce buffer length mismatch: rank %d has %d, rank 0 has %d", i, len(s.contrib[i]), n)
		}
	}
	sum := make([]float64, n)
	for _, c := range s.contrib {
		for j, v := range c {
			sum[j] += v
		}
	}
	return sum, nil
}

// Reduce sums buf elementwise across ranks; the result lands in root's buf,
// other ranks' buffers are unchanged.
func (r *Rank) Reduce(root int, buf []float64) error {
	if root < 0 || root >= r.world.n {
		return fmt.Errorf("mpi: rank %d: reduce with invalid root %d", r.id, root)
	}
	res, err := r.world.enterCollective(r.id, r.nextCollSeq(), buf, func(s *collSlot) {
		sum, err := sumContrib(s)
		if err != nil {
			s.err = err
			return
		}
		s.result[root] = sum
	})
	if err != nil {
		return err
	}
	if r.id == root {
		copy(buf, res)
	}
	return nil
}

// Allreduce sums buf elementwise across ranks; every rank receives the sum.
func (r *Rank) Allreduce(buf []float64) error {
	res, err := r.world.enterCollective(r.id, r.nextCollSeq(), buf, func(s *collSlot) {
		sum, err := sumContrib(s)
		if err != nil {
			s.err = err
			return
		}
		for i := range s.result {
			s.result[i] = sum
		}
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

// Allgather concatenates every rank's buf in rank order into out, which
// must have length world.Size() * len(buf).
func (r *Rank) Allgather(buf, out []float64) error {
	if len(out) != r.world.n*len(buf) {
		return fmt.Errorf("mpi: rank %d: allgather out length %d, want %d", r.id, len(out), r.world.n*len(buf))
	}
	res, err := r.world.enterCollective(r.id, r.nextCollSeq(), buf, func(s *collSlot) {
		n := len(s.contrib[0])
		for i := range s.contrib {
			if len(s.contrib[i]) != n {
				s.err = fmt.Errorf("mpi: allgather buffer length mismatch: rank %d has %d, rank 0 has %d", i, len(s.contrib[i]), n)
				return
			}
		}
		cat := make([]float64, 0, len(s.contrib)*n)
		for _, c := range s.contrib {
			cat = append(cat, c...)
		}
		for i := range s.result {
			s.result[i] = cat
		}
	})
	if err != nil {
		return err
	}
	copy(out, res)
	return nil
}

// Alltoall scatters blocks: rank r sends buf[d*blk:(d+1)*blk] to rank d and
// receives rank s's block s*... into out[s*blk:(s+1)*blk]. len(buf) and
// len(out) must both equal world.Size() * blk.
func (r *Rank) Alltoall(blk int, buf, out []float64) error {
	want := r.world.n * blk
	if len(buf) != want || len(out) != want {
		return fmt.Errorf("mpi: rank %d: alltoall lengths %d/%d, want %d", r.id, len(buf), len(out), want)
	}
	res, err := r.world.enterCollective(r.id, r.nextCollSeq(), buf, func(s *collSlot) {
		for dst := range s.result {
			gathered := make([]float64, 0, want)
			for src := range s.contrib {
				if len(s.contrib[src]) != want {
					s.err = fmt.Errorf("mpi: alltoall buffer length mismatch at rank %d", src)
					return
				}
				gathered = append(gathered, s.contrib[src][dst*blk:(dst+1)*blk]...)
			}
			s.result[dst] = gathered
		}
	})
	if err != nil {
		return err
	}
	copy(out, res)
	return nil
}

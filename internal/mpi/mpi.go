// Package mpi is an in-process message-passing runtime: the substrate on
// which application kernels execute so that the tracing tool can observe a
// real parallel run.
//
// In the paper each MPI process runs on its own Valgrind virtual machine;
// here each rank runs in its own goroutine against this runtime. The
// runtime provides the MPI subset the traced applications need: blocking
// and non-blocking point-to-point messages with tag matching, and the
// common collectives. Payloads are float64 slices, the element type of all
// the proxy kernels.
//
// Message matching is deterministic: a receive matches the oldest pending
// message with the requested source and tag, and collective results depend
// only on rank order, so a traced run is reproducible regardless of
// goroutine scheduling.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrTimeout is returned when a blocking operation exceeds the world's
// watchdog timeout, which almost always means the application deadlocked.
var ErrTimeout = errors.New("mpi: blocking operation timed out (deadlock in application?)")

// Message is a point-to-point payload in flight.
type Message struct {
	Src  int
	Tag  int
	Data []float64
}

// inbox is the single-consumer mailbox of one rank.
type inbox struct {
	mu   sync.Mutex
	msgs []Message
	bell chan struct{} // capacity 1; rung on every delivery
}

func newInbox() *inbox {
	return &inbox{bell: make(chan struct{}, 1)}
}

func (ib *inbox) deliver(m Message) {
	ib.mu.Lock()
	ib.msgs = append(ib.msgs, m)
	ib.mu.Unlock()
	select {
	case ib.bell <- struct{}{}:
	default:
	}
}

// take removes and returns the oldest message matching (src, tag); ok
// reports whether one was found.
func (ib *inbox) take(src, tag int) (Message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for i, m := range ib.msgs {
		if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
			ib.msgs = append(ib.msgs[:i], ib.msgs[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// World is a communicator: a fixed set of ranks that can exchange messages
// and participate in collectives.
type World struct {
	n       int
	inboxes []*inbox
	timeout time.Duration

	collMu    sync.Mutex
	collSlots map[int]*collSlot
	collSeqs  []int // per-rank collective sequence numbers
}

// Option configures a World.
type Option func(*World)

// WithTimeout sets the watchdog timeout for blocking operations. The
// default is 30 seconds; tests lower it to fail fast on deadlocks.
func WithTimeout(d time.Duration) Option {
	return func(w *World) { w.timeout = d }
}

// NewWorld creates a communicator with n ranks.
func NewWorld(n int, opts ...Option) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", n)
	}
	w := &World{
		n:         n,
		inboxes:   make([]*inbox, n),
		timeout:   30 * time.Second,
		collSlots: map[int]*collSlot{},
		collSeqs:  make([]int, n),
	}
	for i := range w.inboxes {
		w.inboxes[i] = newInbox()
	}
	for _, o := range opts {
		o(w)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Rank returns the handle rank i uses for communication.
func (w *World) Rank(i int) (*Rank, error) {
	if i < 0 || i >= w.n {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", i, w.n)
	}
	return &Rank{world: w, id: i}, nil
}

// Run executes body concurrently on every rank and waits for all of them.
// It returns the first error (by rank order); a panic in a rank body is
// converted into an error rather than crashing the process.
func (w *World) Run(body func(r *Rank) error) error {
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	for i := 0; i < w.n; i++ {
		r, err := w.Rank(i)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(rank *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank.id] = fmt.Errorf("mpi: rank %d panicked: %v", rank.id, p)
				}
			}()
			errs[rank.id] = body(rank)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank is one process's endpoint into the world.
type Rank struct {
	world *World
	id    int
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.n }

// Send delivers a copy of data to dst with the given tag. Sends are eager
// and buffered: Send returns as soon as the message is enqueued, so a
// matching pair of Send calls on two ranks cannot deadlock. (Protocol
// effects such as rendezvous blocking belong to the replay simulator, not
// to the tracing run.)
func (r *Rank) Send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= r.world.n {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d", r.id, dst)
	}
	if dst == r.id {
		return fmt.Errorf("mpi: rank %d: send to self", r.id)
	}
	buf := append([]float64(nil), data...)
	r.world.inboxes[dst].deliver(Message{Src: r.id, Tag: tag, Data: buf})
	return nil
}

// Recv blocks until a message with the given source and tag (wildcards
// allowed) arrives, and copies its payload into buf. The message length
// must equal len(buf).
func (r *Rank) Recv(src, tag int, buf []float64) error {
	m, err := r.recvMessage(src, tag)
	if err != nil {
		return err
	}
	if len(m.Data) != len(buf) {
		return fmt.Errorf("mpi: rank %d: recv size mismatch: message from %d tag %d has %d elements, buffer has %d",
			r.id, m.Src, m.Tag, len(m.Data), len(buf))
	}
	copy(buf, m.Data)
	return nil
}

func (r *Rank) recvMessage(src, tag int) (Message, error) {
	if src != AnySource && (src < 0 || src >= r.world.n) {
		return Message{}, fmt.Errorf("mpi: rank %d: recv from invalid rank %d", r.id, src)
	}
	ib := r.world.inboxes[r.id]
	deadline := time.NewTimer(r.world.timeout)
	defer deadline.Stop()
	for {
		if m, ok := ib.take(src, tag); ok {
			return m, nil
		}
		select {
		case <-ib.bell:
			// Another message arrived; rescan.
		case <-deadline.C:
			return Message{}, fmt.Errorf("%w (rank %d waiting for src=%d tag=%d)", ErrTimeout, r.id, src, tag)
		}
	}
}

// Sendrecv performs a combined exchange: sends sendData to dst and receives
// into recvBuf from src, without deadlocking.
func (r *Rank) Sendrecv(dst, sendTag int, sendData []float64, src, recvTag int, recvBuf []float64) error {
	if err := r.Send(dst, sendTag, sendData); err != nil {
		return err
	}
	return r.Recv(src, recvTag, recvBuf)
}

// Request is a handle for a non-blocking operation, completed by Wait.
type Request struct {
	rank *Rank
	// For receives:
	isRecv bool
	src    int
	tag    int
	buf    []float64
	done   bool
}

// Isend starts a non-blocking send. Because the runtime's sends are eager
// and buffered, the data is captured immediately and the request completes
// at once; Wait is still required for symmetry with real MPI programs.
func (r *Rank) Isend(dst, tag int, data []float64) (*Request, error) {
	if err := r.Send(dst, tag, data); err != nil {
		return nil, err
	}
	return &Request{rank: r, done: true}, nil
}

// Irecv posts a non-blocking receive. The match happens at Wait time; the
// runtime preserves FIFO matching per (source, tag).
func (r *Rank) Irecv(src, tag int, buf []float64) (*Request, error) {
	if src != AnySource && (src < 0 || src >= r.world.n) {
		return nil, fmt.Errorf("mpi: rank %d: irecv from invalid rank %d", r.id, src)
	}
	return &Request{rank: r, isRecv: true, src: src, tag: tag, buf: buf}, nil
}

// Wait blocks until the request completes. Waiting twice is an error.
func (req *Request) Wait() error {
	if req.done {
		if req.isRecv {
			return fmt.Errorf("mpi: request waited twice")
		}
		return nil
	}
	req.done = true
	return req.rank.Recv(req.src, req.tag, req.buf)
}

// WaitAll completes all given requests, returning the first error.
func WaitAll(reqs ...*Request) error {
	for _, q := range reqs {
		if err := q.Wait(); err != nil {
			return err
		}
	}
	return nil
}

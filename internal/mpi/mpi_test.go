package mpi

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func newTestWorld(t *testing.T, n int) *World {
	t.Helper()
	w, err := NewWorld(n, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := NewWorld(n); err == nil {
			t.Errorf("NewWorld(%d): expected error", n)
		}
	}
}

func TestRankOutOfRange(t *testing.T) {
	w := newTestWorld(t, 2)
	if _, err := w.Rank(2); err == nil {
		t.Error("Rank(2) on size-2 world: expected error")
	}
	if _, err := w.Rank(-1); err == nil {
		t.Error("Rank(-1): expected error")
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			return r.Send(1, 42, []float64{1, 2, 3})
		case 1:
			buf := make([]float64, 3)
			if err := r.Recv(0, 42, buf); err != nil {
				return err
			}
			if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
				return fmt.Errorf("payload = %v", buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			data := []float64{7}
			if err := r.Send(1, 0, data); err != nil {
				return err
			}
			data[0] = 99 // must not affect the in-flight message
			return nil
		}
		buf := make([]float64, 1)
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		if buf[0] != 7 {
			return fmt.Errorf("send aliased caller buffer: got %v", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagAndSourceFiltering(t *testing.T) {
	w := newTestWorld(t, 3)
	err := w.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			return r.Send(2, 1, []float64{10})
		case 1:
			return r.Send(2, 2, []float64{20})
		case 2:
			buf := make([]float64, 1)
			// Ask for tag 2 first, even though tag 1 may arrive earlier.
			if err := r.Recv(1, 2, buf); err != nil {
				return err
			}
			if buf[0] != 20 {
				return fmt.Errorf("tag filter: got %v, want 20", buf[0])
			}
			if err := r.Recv(AnySource, AnyTag, buf); err != nil {
				return err
			}
			if buf[0] != 10 {
				return fmt.Errorf("wildcard recv: got %v, want 10", buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvFIFOPerSourceTag(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				if err := r.Send(1, 9, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]float64, 1)
		for i := 0; i < 5; i++ {
			if err := r.Recv(0, 9, buf); err != nil {
				return err
			}
			if buf[0] != float64(i) {
				return fmt.Errorf("FIFO violated: got %v at position %d", buf[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendErrors(t *testing.T) {
	w := newTestWorld(t, 2)
	r0, _ := w.Rank(0)
	if err := r0.Send(5, 0, nil); err == nil {
		t.Error("send to out-of-range rank: expected error")
	}
	if err := r0.Send(0, 0, nil); err == nil {
		t.Error("send to self: expected error")
	}
	if err := r0.Recv(7, 0, nil); err == nil {
		t.Error("recv from out-of-range rank: expected error")
	}
}

func TestRecvSizeMismatch(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, []float64{1, 2, 3})
		}
		buf := make([]float64, 2)
		err := r.Recv(0, 0, buf)
		if err == nil {
			return errors.New("size mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeout(t *testing.T) {
	w, err := NewWorld(2, WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := w.Rank(1)
	start := time.Now()
	err = r1.Recv(0, 0, make([]float64, 1))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Error("timeout took too long")
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "kaboom") {
		t.Errorf("panic not converted to error: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestSendrecvRing(t *testing.T) {
	const n = 8
	w := newTestWorld(t, n)
	err := w.Run(func(r *Rank) error {
		next := (r.ID() + 1) % n
		prev := (r.ID() + n - 1) % n
		buf := make([]float64, 1)
		if err := r.Sendrecv(next, 0, []float64{float64(r.ID())}, prev, 0, buf); err != nil {
			return err
		}
		if buf[0] != float64(prev) {
			return fmt.Errorf("ring: got %v, want %d", buf[0], prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			req, err := r.Isend(1, 3, []float64{5})
			if err != nil {
				return err
			}
			return req.Wait()
		}
		buf := make([]float64, 1)
		req, err := r.Irecv(0, 3, buf)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if buf[0] != 5 {
			return fmt.Errorf("irecv payload = %v", buf[0])
		}
		if err := req.Wait(); err == nil {
			return errors.New("double wait on recv request not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAll(t *testing.T) {
	w := newTestWorld(t, 3)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			var reqs []*Request
			for dst := 1; dst <= 2; dst++ {
				q, err := r.Isend(dst, 0, []float64{float64(dst)})
				if err != nil {
					return err
				}
				reqs = append(reqs, q)
			}
			return WaitAll(reqs...)
		}
		buf := make([]float64, 1)
		return r.Recv(0, 0, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const n = 4
	w := newTestWorld(t, n)
	var before [n]int32
	err := w.Run(func(r *Rank) error {
		before[r.ID()] = 1
		if err := r.Barrier(); err != nil {
			return err
		}
		// After the barrier every rank must observe everyone's flag.
		for i := 0; i < n; i++ {
			if before[i] != 1 {
				return fmt.Errorf("rank %d passed barrier before rank %d arrived", r.ID(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	const n = 5
	w := newTestWorld(t, n)
	err := w.Run(func(r *Rank) error {
		buf := make([]float64, 3)
		if r.ID() == 2 {
			buf = []float64{1, 2, 3}
		}
		if err := r.Bcast(2, buf); err != nil {
			return err
		}
		if buf[0] != 1 || buf[2] != 3 {
			return fmt.Errorf("rank %d bcast result %v", r.ID(), buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 6
	w := newTestWorld(t, n)
	err := w.Run(func(r *Rank) error {
		buf := []float64{float64(r.ID()), 1}
		if err := r.Reduce(0, buf); err != nil {
			return err
		}
		if r.ID() == 0 {
			if buf[0] != 15 || buf[1] != 6 { // 0+1+..+5 = 15
				return fmt.Errorf("reduce result %v", buf)
			}
		} else if buf[1] != 1 {
			return fmt.Errorf("reduce clobbered non-root buffer: %v", buf)
		}
		all := []float64{2}
		if err := r.Allreduce(all); err != nil {
			return err
		}
		if all[0] != 12 {
			return fmt.Errorf("allreduce result %v, want 12", all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 4
	w := newTestWorld(t, n)
	err := w.Run(func(r *Rank) error {
		out := make([]float64, 2*n)
		if err := r.Allgather([]float64{float64(r.ID()), -float64(r.ID())}, out); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if out[2*i] != float64(i) || out[2*i+1] != -float64(i) {
				return fmt.Errorf("allgather out = %v", out)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const n, blk = 3, 2
	w := newTestWorld(t, n)
	err := w.Run(func(r *Rank) error {
		buf := make([]float64, n*blk)
		for d := 0; d < n; d++ {
			buf[d*blk] = float64(100*r.ID() + d) // block destined for rank d
			buf[d*blk+1] = 0.5
		}
		out := make([]float64, n*blk)
		if err := r.Alltoall(blk, buf, out); err != nil {
			return err
		}
		for s := 0; s < n; s++ {
			want := float64(100*s + r.ID())
			if out[s*blk] != want {
				return fmt.Errorf("rank %d alltoall out=%v, block %d want %v", r.ID(), out, s, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveLengthMismatch(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		buf := make([]float64, r.ID()+1) // lengths differ across ranks
		err := r.Allreduce(buf)
		if err == nil {
			return errors.New("length mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesInSequence(t *testing.T) {
	// Multiple different collectives back to back must not cross-talk.
	const n = 4
	w := newTestWorld(t, n)
	err := w.Run(func(r *Rank) error {
		for iter := 0; iter < 10; iter++ {
			v := []float64{1}
			if err := r.Allreduce(v); err != nil {
				return err
			}
			if v[0] != n {
				return fmt.Errorf("iter %d: allreduce = %v", iter, v[0])
			}
			if err := r.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicHaloExchange(t *testing.T) {
	// A 2-iteration halo exchange must produce identical values on repeat
	// runs regardless of goroutine scheduling.
	run := func() []float64 {
		const n = 4
		w := newTestWorld(t, n)
		result := make([]float64, n)
		err := w.Run(func(r *Rank) error {
			val := float64(r.ID() + 1)
			buf := make([]float64, 1)
			for iter := 0; iter < 2; iter++ {
				next := (r.ID() + 1) % n
				prev := (r.ID() + n - 1) % n
				if err := r.Sendrecv(next, iter, []float64{val}, prev, iter, buf); err != nil {
					return err
				}
				val = math.Sqrt(val*buf[0]) + 1
			}
			result[r.ID()] = val
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return result
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic exchange: %v vs %v", a, b)
		}
	}
}

func BenchmarkSendRecv(b *testing.B) {
	w, err := NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]float64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(r *Rank) error {
			if r.ID() == 0 {
				return r.Send(1, 0, payload)
			}
			return r.Recv(0, 0, make([]float64, 128))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

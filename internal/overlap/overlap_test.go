package overlap

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"overlapsim/internal/memory"
	"overlapsim/internal/trace"
	"overlapsim/internal/units"
)

// sendRecvSet builds a two-rank profiled set:
//
//	rank 0: Burst(1000) Send(4096 -> rank 1)
//	rank 1: Recv Burst(1000)
//
// with production points at 250/500/750/1000 and consumption points at
// 0/250/500/750 (4 chunks).
func sendRecvSet() *ProfiledSet {
	s := trace.NewSet("unit", "original", 2, 1000)
	s.Traces[0].Append(trace.Burst(1000), trace.Send(1, 2, 4096))
	s.Traces[1].Append(trace.Recv(0, 2, 4096), trace.Burst(1000))
	return &ProfiledSet{
		Original: s,
		Chunks:   4,
		Annotations: []map[int]Annotation{
			{1: {Production: &Profile{Offsets: []int64{250, 500, 750, 1000}, Burst: 1000}}},
			{0: {Consumption: &Profile{Offsets: []int64{0, 250, 500, 750}, Burst: 1000}}},
		},
	}
}

func countKind(t *trace.Trace, k trace.Kind) int {
	n := 0
	for _, r := range t.Records {
		if r.Kind == k {
			n++
		}
	}
	return n
}

func TestTransformBothMechanismsReal(t *testing.T) {
	ps := sendRecvSet()
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms, Pattern: PatternReal})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(out); err != nil {
		t.Fatalf("transformed set invalid: %v", err)
	}
	r0, r1 := &out.Traces[0], &out.Traces[1]

	// Sender: the burst is split and 4 partial isends are injected.
	if got := countKind(r0, trace.KindISend); got != 4 {
		t.Errorf("sender isends = %d, want 4", got)
	}
	if got := countKind(r0, trace.KindSend); got != 0 {
		t.Errorf("original blocking send should be gone, found %d", got)
	}
	if got := r0.TotalInstructions(); got != 1000 {
		t.Errorf("sender burst instructions = %d, want 1000 (split must conserve)", got)
	}
	// The first isend appears after a burst of 250 instructions.
	if r0.Records[0].Kind != trace.KindBurst || r0.Records[0].Instr != 250 {
		t.Errorf("sender trace starts %v, want Burst(250)", r0.Records[0])
	}
	if r0.Records[1].Kind != trace.KindISend {
		t.Errorf("second sender record %v, want isend", r0.Records[1])
	}

	// Receiver: 4 irecvs at the original recv point, 4 waits spread
	// through the following burst. First chunk needed at offset 0: its
	// wait comes before any computation.
	if got := countKind(r1, trace.KindIRecv); got != 4 {
		t.Errorf("receiver irecvs = %d, want 4", got)
	}
	if got := countKind(r1, trace.KindWait); got != 4 {
		t.Errorf("receiver waits = %d, want 4", got)
	}
	if got := r1.TotalInstructions(); got != 1000 {
		t.Errorf("receiver burst instructions = %d, want 1000", got)
	}
	// Chunk sizes sum to the original message size.
	var sent units.Bytes
	for _, r := range r0.Records {
		if r.Kind == trace.KindISend {
			sent += r.Size
		}
	}
	if sent != 4096 {
		t.Errorf("chunk sizes sum to %d, want 4096", sent)
	}
}

func TestTransformEarlySendOnly(t *testing.T) {
	ps := sendRecvSet()
	out, err := Transform(ps, Options{Mechanisms: EarlySend, Pattern: PatternReal})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(out); err != nil {
		t.Fatal(err)
	}
	r1 := &out.Traces[1]
	// Receiver keeps blocking behaviour: every wait precedes the burst.
	// Records: IR,W,IR,W,...,Burst.
	sawBurst := false
	for _, r := range r1.Records {
		if r.Kind == trace.KindBurst {
			sawBurst = true
		}
		if r.Kind == trace.KindWait && sawBurst {
			t.Fatalf("late wait found with LateRecv disabled: %v", r1.Records)
		}
	}
}

func TestTransformLateRecvOnly(t *testing.T) {
	ps := sendRecvSet()
	out, err := Transform(ps, Options{Mechanisms: LateRecv, Pattern: PatternReal})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(out); err != nil {
		t.Fatal(err)
	}
	r0 := &out.Traces[0]
	// Sender keeps blocking position: the full burst comes first, then all
	// partial sends at the original send point.
	if r0.Records[0].Kind != trace.KindBurst || r0.Records[0].Instr != 1000 {
		t.Errorf("sender should start with the intact burst: %v", r0.Records[0])
	}
	if got := countKind(r0, trace.KindISend); got != 4 {
		t.Errorf("sender isends = %d, want 4 (chunking is shared)", got)
	}
}

func TestTransformNoMechanismsStillChunks(t *testing.T) {
	ps := sendRecvSet()
	out, err := Transform(ps, Options{Mechanisms: 0, Pattern: PatternReal})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(out); err != nil {
		t.Fatal(err)
	}
	// Both sides at original positions, still chunked: this variant
	// isolates pure chunking overhead.
	r0, r1 := &out.Traces[0], &out.Traces[1]
	if r0.Records[0].Instr != 1000 {
		t.Error("sender burst should be intact")
	}
	if got := countKind(r1, trace.KindWait); got != 4 {
		t.Errorf("receiver waits = %d, want 4", got)
	}
}

func TestTransformLinearPattern(t *testing.T) {
	ps := sendRecvSet()
	// Corrupt the measured profiles to prove linear ignores them.
	ps.Annotations[0][1] = Annotation{Production: &Profile{Offsets: []int64{1000, 1000, 1000, 1000}, Burst: 1000}}
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms, Pattern: PatternLinear})
	if err != nil {
		t.Fatal(err)
	}
	r0 := &out.Traces[0]
	// Linear production: chunk c completes at (c+1)/4 of 1000.
	wantBursts := []int64{250, 250, 250, 250}
	var bursts []int64
	for _, r := range r0.Records {
		if r.Kind == trace.KindBurst {
			bursts = append(bursts, r.Instr)
		}
	}
	if len(bursts) != 4 {
		t.Fatalf("sender bursts = %v, want 4 segments of 250", bursts)
	}
	for i := range wantBursts {
		if bursts[i] != wantBursts[i] {
			t.Errorf("sender burst segments = %v, want %v", bursts, wantBursts)
			break
		}
	}
}

func TestTransformRealWorstCaseProfile(t *testing.T) {
	// All production at the end of the burst, all consumption at the
	// start: the overlapped trace must look like the original (chunked but
	// no early injection benefit).
	ps := sendRecvSet()
	ps.Annotations[0][1] = Annotation{Production: &Profile{Offsets: []int64{1000, 1000, 1000, 1000}, Burst: 1000}}
	ps.Annotations[1][0] = Annotation{Consumption: &Profile{Offsets: []int64{0, 0, 0, 0}, Burst: 1000}}
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms, Pattern: PatternReal})
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := &out.Traces[0], &out.Traces[1]
	// Sender: full burst, then all isends.
	if r0.Records[0].Kind != trace.KindBurst || r0.Records[0].Instr != 1000 {
		t.Errorf("worst-case sender should keep burst intact: %v", r0.Records)
	}
	// Receiver: all waits before any burst segment.
	seenWait := 0
	for _, r := range r1.Records {
		if r.Kind == trace.KindWait {
			seenWait++
		}
		if r.Kind == trace.KindBurst && seenWait != 4 {
			t.Errorf("worst-case receiver computes before all waits: %v", r1.Records)
			break
		}
	}
}

func TestTransformMissingAnnotationsConservative(t *testing.T) {
	ps := sendRecvSet()
	ps.Annotations = []map[int]Annotation{{}, {}} // tracer gave us nothing
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms, Pattern: PatternReal})
	if err != nil {
		t.Fatal(err)
	}
	r0 := &out.Traces[0]
	// Production unknown -> chunks only complete at the end of the burst.
	if r0.Records[0].Kind != trace.KindBurst || r0.Records[0].Instr != 1000 {
		t.Errorf("unannotated send should stay at burst end: %v", r0.Records)
	}
	r1 := &out.Traces[1]
	// Consumption unknown -> waits immediately (offset 0), before compute.
	if countKind(r1, trace.KindWait) != 4 {
		t.Errorf("unannotated recv should still wait for all chunks")
	}
}

func TestTransformChunkOverride(t *testing.T) {
	ps := sendRecvSet()
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms, Pattern: PatternLinear, Chunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := countKind(&out.Traces[0], trace.KindISend); got != 8 {
		t.Errorf("chunk override: isends = %d, want 8", got)
	}
	if !strings.Contains(out.Variant, "c8") {
		t.Errorf("variant name %q should mention c8", out.Variant)
	}
}

func TestTransformTinyMessageNotOversplit(t *testing.T) {
	s := trace.NewSet("tiny", "original", 2, 1000)
	s.Traces[0].Append(trace.Burst(100), trace.Send(1, 0, 2)) // 2-byte message
	s.Traces[1].Append(trace.Recv(0, 0, 2), trace.Burst(100))
	ps := &ProfiledSet{Original: s, Chunks: 16, Annotations: []map[int]Annotation{{}, {}}}
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms, Pattern: PatternLinear})
	if err != nil {
		t.Fatal(err)
	}
	if got := countKind(&out.Traces[0], trace.KindISend); got != 2 {
		t.Errorf("2-byte message split into %d chunks, want 2", got)
	}
	if err := trace.Validate(out); err != nil {
		t.Fatal(err)
	}
}

func TestTransformCollectivesPassThrough(t *testing.T) {
	s := trace.NewSet("coll", "original", 2, 1000)
	for r := 0; r < 2; r++ {
		s.Traces[r].Append(trace.Burst(500), trace.Global(trace.Allreduce, 8, 0), trace.Burst(500))
	}
	ps := &ProfiledSet{Original: s, Chunks: 4, Annotations: []map[int]Annotation{{}, {}}}
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms, Pattern: PatternLinear})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if got := countKind(&out.Traces[r], trace.KindCollective); got != 1 {
			t.Errorf("rank %d collectives = %d, want 1", r, got)
		}
	}
}

func TestTransformCollectiveBoundsInjection(t *testing.T) {
	// A send after a collective must not inject into a burst before the
	// collective: [Burst][Allreduce][Send] has no usable production burst.
	s := trace.NewSet("coll", "original", 2, 1000)
	s.Traces[0].Append(trace.Burst(500), trace.Global(trace.Barrier, 0, 0), trace.Send(1, 0, 64))
	s.Traces[1].Append(trace.Global(trace.Barrier, 0, 0), trace.Recv(0, 0, 64))
	ps := &ProfiledSet{Original: s, Chunks: 2, Annotations: []map[int]Annotation{{}, {}}}
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms, Pattern: PatternLinear})
	if err != nil {
		t.Fatal(err)
	}
	r0 := &out.Traces[0]
	if r0.Records[0].Kind != trace.KindBurst || r0.Records[0].Instr != 500 {
		t.Errorf("burst before collective must stay intact: %v", r0.Records)
	}
}

func TestTransformErrors(t *testing.T) {
	if _, err := Transform(nil, Options{}); err == nil {
		t.Error("nil set: expected error")
	}
	ps := sendRecvSet()
	ps.Chunks = 0
	if _, err := Transform(ps, Options{}); err == nil {
		t.Error("zero chunks: expected error")
	}
	ps = sendRecvSet()
	if _, err := Transform(ps, Options{Chunks: MaxChunks + 1}); err == nil {
		t.Error("too many chunks: expected error")
	}
	ps = sendRecvSet()
	ps.Annotations = ps.Annotations[:1]
	if _, err := Transform(ps, Options{}); err == nil {
		t.Error("annotation arity mismatch: expected error")
	}
}

func TestProfileClamp(t *testing.T) {
	p := Profile{Offsets: []int64{-5, 50, 2000, memory.Unread}, Burst: 1000}
	p.Clamp()
	want := []int64{0, 50, 1000, 1000}
	for i := range want {
		if p.Offsets[i] != want[i] {
			t.Errorf("Clamp = %v, want %v", p.Offsets, want)
			break
		}
	}
}

func TestMechanismAndPatternStrings(t *testing.T) {
	if BothMechanisms.String() != "both" || EarlySend.String() != "earlysend" ||
		LateRecv.String() != "laterecv" || Mechanism(0).String() != "none" {
		t.Error("mechanism names wrong")
	}
	if PatternReal.String() != "real" || PatternLinear.String() != "linear" {
		t.Error("pattern names wrong")
	}
	v := Options{Mechanisms: BothMechanisms, Pattern: PatternLinear}.Variant(4)
	if v != "overlap-linear-both-c4" {
		t.Errorf("Variant = %q", v)
	}
}

func TestSplitSizeConserves(t *testing.T) {
	f := func(szU uint32, nU uint8) bool {
		size := units.Bytes(szU % (1 << 24))
		n := int(nU)%16 + 1
		parts := splitSize(size, n)
		var sum units.Bytes
		for _, p := range parts {
			if p < 0 {
				return false
			}
			sum += p
		}
		return sum == size && len(parts) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkTagsInjective(t *testing.T) {
	seen := map[int]bool{}
	for tag := 0; tag < 8; tag++ {
		for c := 0; c < MaxChunks; c++ {
			k := chunkTag(tag, c)
			if seen[k] {
				t.Fatalf("chunk tag collision at tag=%d c=%d", tag, c)
			}
			seen[k] = true
		}
	}
}

// randomProfiledSet builds a random but structurally valid profiled set.
func randomProfiledSet(rng *rand.Rand) *ProfiledSet {
	nranks := rng.Intn(3) + 2
	chunks := rng.Intn(8) + 1
	s := trace.NewSet("prop", "original", nranks, 1000)
	ann := make([]map[int]Annotation, nranks)
	for r := range ann {
		ann[r] = map[int]Annotation{}
	}
	pairs := rng.Intn(10) + 1
	for p := 0; p < pairs; p++ {
		src := rng.Intn(nranks)
		dst := (src + 1 + rng.Intn(nranks-1)) % nranks
		size := units.Bytes(rng.Intn(1<<14) + 1)
		tag := p
		burstS := int64(rng.Intn(5000) + 1)
		burstR := int64(rng.Intn(5000) + 1)

		s.Traces[src].Append(trace.Burst(burstS))
		prod := make([]int64, chunks)
		for c := range prod {
			prod[c] = rng.Int63n(burstS + 1)
		}
		idx := len(s.Traces[src].Records)
		s.Traces[src].Append(trace.Send(dst, tag, size))
		ann[src][idx] = Annotation{Production: &Profile{Offsets: prod, Burst: burstS}}

		idxR := len(s.Traces[dst].Records)
		s.Traces[dst].Append(trace.Recv(src, tag, size))
		cons := make([]int64, chunks)
		for c := range cons {
			cons[c] = rng.Int63n(burstR + 1)
		}
		ann[dst][idxR] = Annotation{Consumption: &Profile{Offsets: cons, Burst: burstR}}
		s.Traces[dst].Append(trace.Burst(burstR))
	}
	return &ProfiledSet{Original: s, Chunks: chunks, Annotations: ann}
}

func TestPropertyTransformPreservesInvariants(t *testing.T) {
	// For random inputs and all option combinations: the output validates,
	// per-rank instructions are conserved, and total bytes are conserved.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ps := randomProfiledSet(rng)
		for _, mech := range []Mechanism{0, EarlySend, LateRecv, BothMechanisms} {
			for _, pat := range []Pattern{PatternReal, PatternLinear} {
				out, err := Transform(ps, Options{Mechanisms: mech, Pattern: pat})
				if err != nil {
					return false
				}
				if trace.Validate(out) != nil {
					return false
				}
				inStats, outStats := trace.Stats(ps.Original), trace.Stats(out)
				if inStats.Instructions != outStats.Instructions {
					return false
				}
				if inStats.Bytes != outStats.Bytes {
					return false
				}
				for r := range out.Traces {
					if out.Traces[r].TotalInstructions() != ps.Original.Traces[r].TotalInstructions() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

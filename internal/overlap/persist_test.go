package overlap

import (
	"bytes"
	"strings"
	"testing"

	"overlapsim/internal/trace"
)

// persistSet builds a small profiled set by hand with both profile kinds.
func persistSet(t *testing.T) *ProfiledSet {
	t.Helper()
	s := trace.NewSet("toy", "original", 2, 1000)
	s.Traces[0].Append(
		trace.Burst(1000),
		trace.Send(1, 7, 4096),
		trace.Burst(500),
	)
	s.Traces[1].Append(
		trace.Burst(200),
		trace.Recv(0, 7, 4096),
		trace.Burst(1300),
	)
	return &ProfiledSet{
		Original: s,
		Chunks:   4,
		Annotations: []map[int]Annotation{
			{1: {Production: &Profile{Offsets: []int64{250, 500, 750, 1000}, Burst: 1000}}},
			{1: {Consumption: &Profile{Offsets: []int64{0, 400, 800, 1300}, Burst: 1300}}},
		},
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	ps := persistSet(t)
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfiles(bytes.NewReader(buf.Bytes()), ps.Original)
	if err != nil {
		t.Fatal(err)
	}
	if got.Chunks != ps.Chunks {
		t.Fatalf("chunks = %d, want %d", got.Chunks, ps.Chunks)
	}
	// The decisive check: both sets transform to byte-identical overlapped
	// traces, so a cache round trip cannot change any simulation result.
	opts := Options{Mechanisms: BothMechanisms, Pattern: PatternReal}
	want, err := Transform(ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	have, err := Transform(got, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf, haveBuf bytes.Buffer
	if err := trace.Write(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(&haveBuf, have); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), haveBuf.Bytes()) {
		t.Errorf("transform after round trip differs:\n%s\n---\n%s", wantBuf.String(), haveBuf.String())
	}
}

func TestProfilesEncodingStable(t *testing.T) {
	ps := persistSet(t)
	var a, b bytes.Buffer
	if err := WriteProfiles(&a, ps); err != nil {
		t.Fatal(err)
	}
	if err := WriteProfiles(&b, ps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("profile encoding is not deterministic")
	}
}

func TestReadProfilesErrors(t *testing.T) {
	orig := persistSet(t).Original
	for _, tc := range []struct{ name, in string }{
		{"empty", ""},
		{"no header", "A 0 1 prod 1000 1 2"},
		{"duplicate header", "P 4\nP 4"},
		{"bad chunks", "P 0"},
		{"rank out of range", "P 4\nA 9 1 prod 1000 1"},
		{"index out of range", "P 4\nA 0 99 prod 1000 1"},
		{"bad kind", "P 4\nA 0 1 sideways 1000 1"},
		{"bad burst", "P 4\nA 0 1 prod x 1"},
		{"bad offset", "P 4\nA 0 1 prod 1000 x"},
		{"unknown record", "P 4\nZ 1"},
		{"short annotation", "P 4\nA 0 1 prod"},
	} {
		if _, err := ReadProfiles(strings.NewReader(tc.in), orig); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := ReadProfiles(strings.NewReader("P 4"), nil); err == nil {
		t.Error("nil original: expected error")
	}
}

// TestProfilesCommentAndUnits ensures comments and blank lines are
// tolerated, matching the trace codec's conventions.
func TestProfilesTolerantInput(t *testing.T) {
	orig := persistSet(t).Original
	in := "# header comment\n\nP 4\n\n# annotation\nA 0 1 prod 1000 1 2 3 4\n"
	ps, err := ReadProfiles(strings.NewReader(in), orig)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := ps.Annotations[0][1]
	if !ok || a.Production == nil || a.Production.Burst != 1000 {
		t.Fatalf("annotation not decoded: %+v", ps.Annotations)
	}
	if got := a.Production.Offsets; len(got) != 4 || got[3] != 4 {
		t.Fatalf("offsets = %v", got)
	}
}

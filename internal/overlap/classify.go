package overlap

import "fmt"

// PatternClass summarizes the shape of a measured profile — the vocabulary
// the paper uses when discussing why real computation patterns defeat
// automatic overlap.
type PatternClass uint8

// Profile shapes.
const (
	// ClassEarly: every chunk's point falls in the first quarter of the
	// burst. For production this is the best case (data ready early); for
	// consumption the worst (everything needed immediately).
	ClassEarly PatternClass = iota
	// ClassLate: every chunk's point falls in the last quarter of the
	// burst. For production this kills early sends; for consumption it is
	// the best case (waits can be deferred).
	ClassLate
	// ClassLinear: points grow roughly uniformly across the burst — the
	// ideal sequential pattern Sancho et al. assume.
	ClassLinear
	// ClassScattered: anything else.
	ClassScattered
)

// String names the class.
func (c PatternClass) String() string {
	switch c {
	case ClassEarly:
		return "early"
	case ClassLate:
		return "late"
	case ClassLinear:
		return "linear"
	case ClassScattered:
		return "scattered"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Classify determines the shape of a profile. Profiles with no burst or a
// single chunk classify by position alone.
func Classify(p *Profile) PatternClass {
	if p == nil || len(p.Offsets) == 0 || p.Burst <= 0 {
		return ClassScattered
	}
	offs := append([]int64(nil), p.Offsets...)
	prof := Profile{Offsets: offs, Burst: p.Burst}
	prof.Clamp()

	allEarly, allLate := true, true
	for _, o := range offs {
		frac := float64(o) / float64(p.Burst)
		if frac > 0.25 {
			allEarly = false
		}
		if frac < 0.75 {
			allLate = false
		}
	}
	switch {
	case allEarly:
		return ClassEarly
	case allLate:
		return ClassLate
	}
	// Linear: offsets sorted ascending and each chunk i within a quarter
	// burst of its ideal uniform position.
	n := len(offs)
	linear := true
	for i, o := range offs {
		if i > 0 && o < offs[i-1] {
			linear = false
			break
		}
		ideal := float64(i+1) / float64(n)
		frac := float64(o) / float64(p.Burst)
		if frac < ideal-0.25 || frac > ideal+0.25 {
			linear = false
			break
		}
	}
	if linear {
		return ClassLinear
	}
	return ClassScattered
}

// OverlapFriendly reports whether the profile shape permits meaningful
// automatic overlap for its role: productions should not all be late,
// consumptions should not all be early.
func OverlapFriendly(production bool, c PatternClass) bool {
	if production {
		return c != ClassLate
	}
	return c != ClassEarly
}

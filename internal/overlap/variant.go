package overlap

import (
	"fmt"
	"strings"

	"overlapsim/internal/trace"
)

// ParseVariant parses a trace-variant name as the CLI tools accept it:
// "original" (the untransformed trace, reported by the second return
// value), or "<pattern>-<mechanism>" with pattern in {real, linear} and
// mechanism in {both, earlysend, laterecv, prepost, none}.
func ParseVariant(v string) (Options, bool, error) {
	if v == "original" {
		return Options{}, true, nil
	}
	pattern, mech, ok := strings.Cut(v, "-")
	if !ok {
		return Options{}, false, fmt.Errorf("bad variant %q (want original or <pattern>-<mechanism>)", v)
	}
	var opts Options
	switch pattern {
	case "real":
		opts.Pattern = PatternReal
	case "linear":
		opts.Pattern = PatternLinear
	default:
		return Options{}, false, fmt.Errorf("bad pattern %q in variant %q (want real or linear)", pattern, v)
	}
	switch mech {
	case "both":
		opts.Mechanisms = BothMechanisms
	case "earlysend":
		opts.Mechanisms = EarlySend
	case "laterecv":
		opts.Mechanisms = LateRecv
	case "prepost":
		opts.Mechanisms = PrepostRecv
	case "none":
		opts.Mechanisms = 0
	default:
		return Options{}, false, fmt.Errorf("bad mechanism %q in variant %q (want both, earlysend, laterecv, prepost or none)", mech, v)
	}
	return opts, false, nil
}

// VariantSet applies a parsed variant to a profiled set: the original
// trace untouched, or the requested overlap transformation.
func VariantSet(ps *ProfiledSet, v string) (*trace.Set, error) {
	opts, original, err := ParseVariant(v)
	if err != nil {
		return nil, err
	}
	if original {
		return ps.Original, nil
	}
	return Transform(ps, opts)
}

package overlap

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"overlapsim/internal/trace"
)

// The profile text format, one record per line, complementing the trace
// codec: a trace file plus a profile file reconstruct a ProfiledSet without
// re-running the instrumented application.
//
//	# comment
//	P <chunks>                                  (header, exactly once, first)
//	A <rank> <recIndex> prod|cons <burst> <offsets...>
//
// Lines are emitted in deterministic order (ranks ascending, record
// indices ascending, production before consumption) so the encoding of a
// given set is byte-stable.

// WriteProfiles encodes the per-record annotations of the profiled set.
func WriteProfiles(w io.Writer, ps *ProfiledSet) error {
	if ps == nil || ps.Original == nil {
		return fmt.Errorf("overlap: nil profiled set")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# overlapsim profiles: %s (chunks=%d)\n", ps.Original.Name, ps.Chunks)
	fmt.Fprintf(bw, "P %d\n", ps.Chunks)
	for rank, anns := range ps.Annotations {
		idxs := make([]int, 0, len(anns))
		for i := range anns {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			a := anns[i]
			if a.Production != nil {
				writeProfileLine(bw, rank, i, "prod", a.Production)
			}
			if a.Consumption != nil {
				writeProfileLine(bw, rank, i, "cons", a.Consumption)
			}
		}
	}
	return bw.Flush()
}

func writeProfileLine(w io.Writer, rank, index int, kind string, p *Profile) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "A %d %d %s %d", rank, index, kind, p.Burst)
	for _, o := range p.Offsets {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatInt(o, 10))
	}
	fmt.Fprintln(w, sb.String())
}

// ReadProfiles decodes annotations written by WriteProfiles and binds them
// to the original trace set, reconstructing the ProfiledSet the tracer
// would have produced. Ranks and record indices are validated against the
// trace so a profile file cannot be paired with the wrong trace silently.
func ReadProfiles(r io.Reader, original *trace.Set) (*ProfiledSet, error) {
	if original == nil {
		return nil, fmt.Errorf("overlap: profiles need an original trace set")
	}
	ps := &ProfiledSet{
		Original:    original,
		Annotations: make([]map[int]Annotation, original.NRanks()),
	}
	for i := range ps.Annotations {
		ps.Annotations[i] = map[int]Annotation{}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sawHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("overlap: profiles line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "P":
			if sawHeader {
				return nil, fail("duplicate header")
			}
			if len(fields) != 2 {
				return nil, fail("bad header")
			}
			chunks, err := strconv.Atoi(fields[1])
			if err != nil || chunks < 1 || chunks > MaxChunks {
				return nil, fail("bad chunk count")
			}
			ps.Chunks = chunks
			sawHeader = true
		case "A":
			if !sawHeader {
				return nil, fail("annotation before header")
			}
			if len(fields) < 5 {
				return nil, fail("short annotation")
			}
			rank, err1 := strconv.Atoi(fields[1])
			index, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad rank/index")
			}
			if rank < 0 || rank >= original.NRanks() {
				return nil, fail("rank out of range")
			}
			if index < 0 || index >= len(original.Traces[rank].Records) {
				return nil, fail("record index out of range")
			}
			kind := fields[3]
			p := &Profile{}
			if p.Burst, err1 = strconv.ParseInt(fields[4], 10, 64); err1 != nil {
				return nil, fail("bad burst length")
			}
			for _, f := range fields[5:] {
				o, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fail("bad offset")
				}
				p.Offsets = append(p.Offsets, o)
			}
			a := ps.Annotations[rank][index]
			switch kind {
			case "prod":
				a.Production = p
			case "cons":
				a.Consumption = p
			default:
				return nil, fail("bad profile kind (want prod or cons)")
			}
			ps.Annotations[rank][index] = a
		default:
			return nil, fail("unknown record")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("overlap: profiles read: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("overlap: profiles: empty input (no header)")
	}
	return ps, nil
}

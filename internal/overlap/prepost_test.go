package overlap

import (
	"testing"

	"overlapsim/internal/trace"
)

// prepostSet: rank 1 computes a long burst, then receives; the send is
// posted early by rank 0. With rendezvous, the transfer cannot start until
// the receive is posted, so preposting moves the start a full burst
// earlier.
func prepostSet() *ProfiledSet {
	s := trace.NewSet("prepost", "original", 2, 1000)
	s.Traces[0].Append(trace.Send(1, 3, 4096))
	s.Traces[1].Append(trace.Burst(5000), trace.Recv(0, 3, 4096), trace.Burst(1000))
	return &ProfiledSet{
		Original:    s,
		Chunks:      4,
		Annotations: []map[int]Annotation{{}, {}},
	}
}

func TestPrepostMovesPostingsBeforeBurst(t *testing.T) {
	out, err := Transform(prepostSet(), Options{
		Mechanisms: BothMechanisms | PrepostRecv, Pattern: PatternLinear})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(out); err != nil {
		t.Fatal(err)
	}
	r1 := out.Traces[1].Records
	// All 4 IRecv postings must precede the first burst record.
	irecvs := 0
	for _, rec := range r1 {
		if rec.Kind == trace.KindBurst {
			break
		}
		if rec.Kind == trace.KindIRecv {
			irecvs++
		}
	}
	if irecvs != 4 {
		t.Fatalf("preposted irecvs before first burst = %d, want 4: %v", irecvs, r1)
	}
}

func TestPrepostWithoutFlagStaysAtRecvPoint(t *testing.T) {
	out, err := Transform(prepostSet(), Options{
		Mechanisms: BothMechanisms, Pattern: PatternLinear})
	if err != nil {
		t.Fatal(err)
	}
	r1 := out.Traces[1].Records
	if r1[0].Kind != trace.KindBurst || r1[0].Instr != 5000 {
		t.Fatalf("without prepost the long burst must come first: %v", r1)
	}
}

func TestPrepostStopsAtSameChannelRecv(t *testing.T) {
	// Two receives on the same (peer, tag) channel: the second must not
	// prepost past the first or FIFO matching inverts.
	s := trace.NewSet("fifo", "original", 2, 1000)
	s.Traces[0].Append(trace.Send(1, 7, 64), trace.Send(1, 7, 64))
	s.Traces[1].Append(trace.Burst(1000), trace.Recv(0, 7, 64), trace.Burst(1000), trace.Recv(0, 7, 64))
	ps := &ProfiledSet{Original: s, Chunks: 2, Annotations: []map[int]Annotation{{}, {}}}
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms | PrepostRecv, Pattern: PatternLinear})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(out); err != nil {
		t.Fatal(err)
	}
	// First recv's postings prepost before the first burst; the second
	// recv's postings must appear only after the first recv's postings.
	r1 := out.Traces[1].Records
	var order []int // request ids in posting order
	for _, rec := range r1 {
		if rec.Kind == trace.KindIRecv {
			order = append(order, rec.Req)
		}
	}
	if len(order) != 4 {
		t.Fatalf("postings = %v", order)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("posting order inverted: %v", order)
		}
	}
}

func TestPrepostStopsAtCollective(t *testing.T) {
	s := trace.NewSet("coll", "original", 2, 1000)
	s.Traces[0].Append(trace.Global(trace.Barrier, 0, 0), trace.Send(1, 0, 64))
	s.Traces[1].Append(trace.Burst(1000), trace.Global(trace.Barrier, 0, 0), trace.Recv(0, 0, 64))
	ps := &ProfiledSet{Original: s, Chunks: 2, Annotations: []map[int]Annotation{{}, {}}}
	out, err := Transform(ps, Options{Mechanisms: BothMechanisms | PrepostRecv, Pattern: PatternLinear})
	if err != nil {
		t.Fatal(err)
	}
	r1 := out.Traces[1].Records
	// Nothing may move before the collective.
	if r1[0].Kind != trace.KindBurst || r1[1].Kind != trace.KindCollective {
		t.Fatalf("prepost crossed a collective: %v", r1)
	}
}

func TestMechanismStringCombos(t *testing.T) {
	cases := []struct {
		m    Mechanism
		want string
	}{
		{BothMechanisms | PrepostRecv, "both+prepost"},
		{EarlySend | PrepostRecv, "earlysend+prepost"},
		{PrepostRecv, "prepost"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Mechanism(%d).String() = %q, want %q", c.m, got, c.want)
		}
	}
}

// Package overlap implements the paper's central transformation: rewriting
// an original (non-overlapped) trace into the overlapped (potential) traces
// that model automatic overlap of communication and computation.
//
// Automatic overlap partitions every original message into independent
// chunks, sends every chunk as soon as it is produced, and waits for every
// chunk at the moment it is first needed for consumption (paper section I).
// Correspondingly, the transformation
//
//   - splits each Send into partial non-blocking sends injected into the
//     *preceding* computation burst at the chunks' production points, and
//   - splits each Recv into partial receive postings plus waits injected
//     into the *following* computation burst at the chunks' first-need
//     points.
//
// Production and first-need points come from the tracing tool's memory
// profiles (the *real* pattern) or from an assumed uniform distribution
// over the burst (the *linear* pattern, modeling an ideal sequential
// computation order — the assumption of Sancho et al. that the paper
// challenges). Each mechanism can also be enabled separately, mirroring the
// paper's ability to study every overlapping mechanism in isolation.
package overlap

import (
	"fmt"
	"sort"
	"strings"

	"overlapsim/internal/memory"
	"overlapsim/internal/trace"
	"overlapsim/internal/units"
)

// MaxChunks bounds the number of partial messages per original message so
// that chunk tags can be derived collision-free from original tags.
const MaxChunks = 256

// Mechanism is a bit set selecting which overlapping mechanisms the
// transformation applies.
type Mechanism uint8

// Overlapping mechanisms.
const (
	// EarlySend injects partial sends at the points where the chunks are
	// finally produced inside the preceding computation burst.
	EarlySend Mechanism = 1 << iota
	// LateRecv injects partial waits at the points where the chunks are
	// first needed inside the following computation burst.
	LateRecv
	// PrepostRecv moves the partial receive postings from the original
	// receive position to the start of the preceding computation burst.
	// Under an eager protocol this changes nothing; under rendezvous it
	// lets transfers start a full burst earlier — one of the
	// "state-of-the-art MPI properties" the paper lists as future work.
	PrepostRecv
)

// BothMechanisms enables the full automatic-overlap transformation of the
// paper (early sends + late waits, receives posted at the original point).
const BothMechanisms = EarlySend | LateRecv

// String lists the enabled mechanisms.
func (m Mechanism) String() string {
	switch m {
	case 0:
		return "none"
	case EarlySend:
		return "earlysend"
	case LateRecv:
		return "laterecv"
	case BothMechanisms:
		return "both"
	}
	var parts []string
	if m&EarlySend != 0 {
		parts = append(parts, "earlysend")
	}
	if m&LateRecv != 0 {
		parts = append(parts, "laterecv")
	}
	if m&PrepostRecv != 0 {
		parts = append(parts, "prepost")
	}
	if len(parts) == 0 {
		return fmt.Sprintf("mechanism(%d)", uint8(m))
	}
	if m&^PrepostRecv == BothMechanisms {
		return "both+prepost"
	}
	return strings.Join(parts, "+")
}

// Pattern selects where chunk production/consumption points come from.
type Pattern uint8

// Patterns.
const (
	// PatternReal uses the instruction offsets measured by the tracing
	// tool — the pattern by which the application really computes on the
	// communicated data.
	PatternReal Pattern = iota
	// PatternLinear distributes partial transfers uniformly over the
	// burst, modeling the ideal sequential computation pattern.
	PatternLinear
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternReal:
		return "real"
	case PatternLinear:
		return "linear"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// Profile carries the measured per-chunk instruction offsets of one
// message, relative to the start of the adjacent computation burst.
type Profile struct {
	// Offsets has one entry per chunk. For a send it is the offset at
	// which the chunk is fully produced; for a receive, the offset at
	// which the chunk is first needed. An offset equal to Burst means
	// "not before the burst ends".
	Offsets []int64
	// Burst is the length of the adjacent burst in instructions.
	Burst int64
}

// Clamp normalizes all offsets into [0, Burst], mapping memory.Unread to
// Burst.
func (p *Profile) Clamp() {
	for i, o := range p.Offsets {
		if o == memory.Unread || o > p.Burst {
			p.Offsets[i] = p.Burst
		} else if o < 0 {
			p.Offsets[i] = 0
		}
	}
}

// Annotation attaches measured profiles to one point-to-point record.
type Annotation struct {
	// Production is set on Send records: where in the preceding burst each
	// chunk was produced.
	Production *Profile
	// Consumption is set on Recv records: where in the following burst
	// each chunk is first needed.
	Consumption *Profile
}

// ProfiledSet is the tracing tool's full output for one run: the original
// trace plus, per rank, the per-record annotations needed to construct the
// overlapped traces.
type ProfiledSet struct {
	Original *trace.Set
	// Annotations[rank][recordIndex] describes the p2p record at that
	// index in Original.Traces[rank].
	Annotations []map[int]Annotation
	// Chunks is the partition granularity the tracer profiled with.
	Chunks int
}

// Options configures a transformation.
type Options struct {
	// Mechanisms selects the overlapping mechanisms; BothMechanisms gives
	// the full automatic overlap.
	Mechanisms Mechanism
	// Pattern selects measured (real) or assumed (linear) computation
	// patterns.
	Pattern Pattern
	// Chunks overrides the chunk count; 0 uses the profiled granularity.
	Chunks int
}

// Variant returns the conventional variant name for the options, e.g.
// "overlap-real-both-c8".
func (o Options) Variant(defaultChunks int) string {
	n := o.Chunks
	if n == 0 {
		n = defaultChunks
	}
	return fmt.Sprintf("overlap-%s-%s-c%d", o.Pattern, o.Mechanisms, n)
}

// Transform builds the overlapped (potential) trace set for the given
// options. The input set is not modified.
func Transform(ps *ProfiledSet, opts Options) (*trace.Set, error) {
	if ps == nil || ps.Original == nil {
		return nil, fmt.Errorf("overlap: nil profiled set")
	}
	chunks := opts.Chunks
	if chunks == 0 {
		chunks = ps.Chunks
	}
	if chunks <= 0 || chunks > MaxChunks {
		return nil, fmt.Errorf("overlap: chunk count %d out of range [1,%d]", chunks, MaxChunks)
	}
	if len(ps.Annotations) != ps.Original.NRanks() {
		return nil, fmt.Errorf("overlap: %d annotation maps for %d ranks", len(ps.Annotations), ps.Original.NRanks())
	}
	out := trace.NewSet(ps.Original.Name, opts.Variant(ps.Chunks), ps.Original.NRanks(), ps.Original.MIPS)
	for rank := range ps.Original.Traces {
		tr, err := transformRank(&ps.Original.Traces[rank], ps.Annotations[rank], chunks, opts)
		if err != nil {
			return nil, fmt.Errorf("overlap: rank %d: %w", rank, err)
		}
		out.Traces[rank] = *tr
		out.Traces[rank].Rank = rank
	}
	return out, nil
}

// injection is a record to insert into a burst at a given instruction
// offset. Priority breaks ties: sends go before waits so that available
// data departs before the process blocks.
type injection struct {
	offset int64
	pri    int
	seq    int
	rec    trace.Record
}

// element is one original record together with the transformation state
// attached to it.
type element struct {
	rec        trace.Record
	isBurst    bool
	injections []injection
	replaced   bool           // original record dropped
	replace    []trace.Record // records emitted in place of the original
}

func transformRank(t *trace.Trace, ann map[int]Annotation, chunks int, opts Options) (*trace.Trace, error) {
	elems := make([]*element, len(t.Records))
	for i, r := range t.Records {
		elems[i] = &element{rec: r, isBurst: r.Kind == trace.KindBurst}
	}
	nextReq := 1
	injSeq := 0

	prevBurst := func(i int) *element {
		for j := i - 1; j >= 0; j-- {
			switch elems[j].rec.Kind {
			case trace.KindBurst:
				return elems[j]
			case trace.KindSend, trace.KindISend, trace.KindMarker:
				// Other sends off the same burst are fine to skip.
			default:
				// A receive, wait or collective breaks the production
				// relationship: the tracer profiles production only against
				// the burst directly feeding the send.
				return nil
			}
		}
		return nil
	}
	nextBurst := func(i int) *element {
		for j := i + 1; j < len(elems); j++ {
			if elems[j].isBurst {
				return elems[j]
			}
			if elems[j].rec.Kind == trace.KindCollective {
				return nil
			}
		}
		return nil
	}
	// prepostTarget finds the burst preceding a receive into which its
	// postings may safely move: the scan stops at collectives and at any
	// earlier receive on the same channel (moving past it would invert
	// FIFO matching).
	prepostTarget := func(i int, rec trace.Record) *element {
		for j := i - 1; j >= 0; j-- {
			switch elems[j].rec.Kind {
			case trace.KindBurst:
				return elems[j]
			case trace.KindCollective:
				return nil
			case trace.KindRecv, trace.KindIRecv:
				if elems[j].rec.Peer == rec.Peer && elems[j].rec.Tag == rec.Tag {
					return nil
				}
			}
		}
		return nil
	}

	for i, e := range elems {
		switch e.rec.Kind {
		case trace.KindSend:
			n := effectiveChunks(chunks, e.rec.Size)
			sizes := splitSize(e.rec.Size, n)
			target := prevBurst(i)
			offsets, err := sendOffsets(ann[i], target, n, opts)
			if err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", i, e.rec, err)
			}
			e.replaced = true
			for c := 0; c < n; c++ {
				rec := trace.ISend(e.rec.Peer, chunkTag(e.rec.Tag, c), sizes[c], nextReq)
				nextReq++
				if opts.Mechanisms&EarlySend != 0 && target != nil {
					injSeq++
					target.injections = append(target.injections,
						injection{offset: offsets[c], pri: 0, seq: injSeq, rec: rec})
				} else {
					e.replace = append(e.replace, rec)
				}
			}

		case trace.KindRecv:
			n := effectiveChunks(chunks, e.rec.Size)
			sizes := splitSize(e.rec.Size, n)
			target := nextBurst(i)
			offsets, err := recvOffsets(ann[i], target, n, opts)
			if err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", i, e.rec, err)
			}
			e.replaced = true
			var preTarget *element
			if opts.Mechanisms&PrepostRecv != 0 {
				preTarget = prepostTarget(i, e.rec)
			}
			for c := 0; c < n; c++ {
				req := nextReq
				nextReq++
				irecv := trace.IRecv(e.rec.Peer, chunkTag(e.rec.Tag, c), sizes[c], req)
				if preTarget != nil {
					injSeq++
					preTarget.injections = append(preTarget.injections,
						injection{offset: 0, pri: -1, seq: injSeq, rec: irecv})
				} else {
					e.replace = append(e.replace, irecv)
				}
				wait := trace.Wait(req)
				if opts.Mechanisms&LateRecv != 0 && target != nil {
					injSeq++
					target.injections = append(target.injections,
						injection{offset: offsets[c], pri: 1, seq: injSeq, rec: wait})
				} else {
					// Blocking behaviour retained: wait for every chunk at
					// the original receive point.
					e.replace = append(e.replace, wait)
				}
			}
		}
	}

	out := &trace.Trace{Rank: t.Rank}
	for _, e := range elems {
		switch {
		case e.isBurst:
			emitBurst(out, e)
		case e.replaced:
			out.Append(e.replace...)
		default:
			out.Append(e.rec)
		}
	}
	return out, nil
}

// emitBurst writes a burst split at its injection offsets.
func emitBurst(out *trace.Trace, e *element) {
	if len(e.injections) == 0 {
		out.Append(e.rec)
		return
	}
	inj := e.injections
	sort.Slice(inj, func(a, b int) bool {
		if inj[a].offset != inj[b].offset {
			return inj[a].offset < inj[b].offset
		}
		if inj[a].pri != inj[b].pri {
			return inj[a].pri < inj[b].pri
		}
		return inj[a].seq < inj[b].seq
	})
	total := e.rec.Instr
	var prev int64
	for _, in := range inj {
		off := in.offset
		if off < 0 {
			off = 0
		}
		if off > total {
			off = total
		}
		out.Append(trace.Burst(off - prev))
		out.Append(in.rec)
		prev = off
	}
	out.Append(trace.Burst(total - prev))
}

// sendOffsets determines the production offsets for a send's chunks.
func sendOffsets(a Annotation, target *element, n int, opts Options) ([]int64, error) {
	if opts.Mechanisms&EarlySend == 0 || target == nil {
		return make([]int64, n), nil // unused
	}
	burst := target.rec.Instr
	if opts.Pattern == PatternLinear {
		return linearOffsets(burst, n, true), nil
	}
	if a.Production == nil {
		// No measurement: the conservative truth is that the data is only
		// known to be complete at the end of the burst.
		return uniformOffsets(burst, n), nil
	}
	return resample(a.Production, burst, n, true), nil
}

// recvOffsets determines the first-need offsets for a receive's chunks.
func recvOffsets(a Annotation, target *element, n int, opts Options) ([]int64, error) {
	if opts.Mechanisms&LateRecv == 0 || target == nil {
		return make([]int64, n), nil // unused
	}
	burst := target.rec.Instr
	if opts.Pattern == PatternLinear {
		return linearOffsets(burst, n, false), nil
	}
	if a.Consumption == nil {
		// No measurement: assume the data is needed immediately.
		return make([]int64, n), nil
	}
	return resample(a.Consumption, burst, n, false), nil
}

// linearOffsets models the ideal sequential pattern: chunk c of a send is
// produced at (c+1)/n of the burst; chunk c of a receive is first needed at
// c/n of the burst.
func linearOffsets(burst int64, n int, production bool) []int64 {
	out := make([]int64, n)
	for c := 0; c < n; c++ {
		k := int64(c)
		if production {
			k++
		}
		out[c] = burst * k / int64(n)
	}
	return out
}

// uniformOffsets places every chunk at the end of the burst.
func uniformOffsets(burst int64, n int) []int64 {
	out := make([]int64, n)
	for c := range out {
		out[c] = burst
	}
	return out
}

// resample adapts a measured profile (possibly of a different granularity
// or burst length) to n chunks over the given burst. When merging source
// chunks it takes the conservative direction for correctness: the maximum
// for production profiles (a chunk may not depart before its last element
// is produced) and the minimum for consumption profiles (a chunk must be
// waited for no later than its first use). When the tracer profiled with
// the chunk count the transform uses, resampling is the identity apart
// from clamping.
func resample(p *Profile, burst int64, n int, takeMax bool) []int64 {
	src := append([]int64(nil), p.Offsets...)
	prof := Profile{Offsets: src, Burst: p.Burst}
	prof.Clamp()
	m := len(src)
	out := make([]int64, n)
	if m == 0 {
		for c := range out {
			out[c] = burst
		}
		return out
	}
	for c := 0; c < n; c++ {
		// Map target chunk c to the source chunk range [lo,hi).
		lo := c * m / n
		hi := (c + 1) * m / n
		if hi <= lo {
			hi = lo + 1
		}
		var v int64
		if !takeMax {
			v = prof.Burst
		}
		for s := lo; s < hi && s < m; s++ {
			if takeMax && src[s] > v {
				v = src[s]
			}
			if !takeMax && src[s] < v {
				v = src[s]
			}
		}
		// Rescale from the profiled burst length to the target burst.
		if prof.Burst > 0 && prof.Burst != burst {
			v = int64(float64(v) / float64(prof.Burst) * float64(burst))
		}
		if v > burst {
			v = burst
		}
		out[c] = v
	}
	return out
}

// effectiveChunks reduces the chunk count for tiny messages: a message is
// never split below one byte per chunk.
func effectiveChunks(chunks int, size units.Bytes) int {
	if size <= 0 {
		return 1
	}
	if int64(chunks) > int64(size) {
		return int(size)
	}
	return chunks
}

// splitSize partitions size into n near-equal parts that sum to size.
func splitSize(size units.Bytes, n int) []units.Bytes {
	out := make([]units.Bytes, n)
	var prev int64
	for c := 1; c <= n; c++ {
		bound := int64(size) * int64(c) / int64(n)
		out[c-1] = units.Bytes(bound - prev)
		prev = bound
	}
	return out
}

// chunkTag derives the wire tag of chunk c of a message with the given
// original tag. Original tags must be non-negative and chunk counts at most
// MaxChunks, which Transform enforces.
func chunkTag(tag, c int) int { return tag*MaxChunks + c }

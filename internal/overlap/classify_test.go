package overlap

import (
	"testing"

	"overlapsim/internal/memory"
)

func TestClassifyShapes(t *testing.T) {
	cases := []struct {
		name string
		p    *Profile
		want PatternClass
	}{
		{"nil", nil, ClassScattered},
		{"empty", &Profile{Burst: 100}, ClassScattered},
		{"zero burst", &Profile{Offsets: []int64{1, 2}, Burst: 0}, ClassScattered},
		{"early", &Profile{Offsets: []int64{0, 10, 20, 5}, Burst: 1000}, ClassEarly},
		{"late", &Profile{Offsets: []int64{980, 990, 1000, 760}, Burst: 1000}, ClassLate},
		{"late with unread", &Profile{Offsets: []int64{900, memory.Unread}, Burst: 1000}, ClassLate},
		{"linear", &Profile{Offsets: []int64{250, 500, 750, 1000}, Burst: 1000}, ClassLinear},
		{"linear with noise", &Profile{Offsets: []int64{300, 450, 800, 950}, Burst: 1000}, ClassLinear},
		{"reverse", &Profile{Offsets: []int64{1000, 700, 400, 40}, Burst: 1000}, ClassScattered},
		{"bimodal", &Profile{Offsets: []int64{0, 1000, 0, 1000}, Burst: 1000}, ClassScattered},
	}
	for _, c := range cases {
		if got := Classify(c.p); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyNamesAndFriendliness(t *testing.T) {
	if ClassEarly.String() != "early" || ClassLate.String() != "late" ||
		ClassLinear.String() != "linear" || ClassScattered.String() != "scattered" {
		t.Error("class names wrong")
	}
	// Production: late is hostile, everything else workable.
	if OverlapFriendly(true, ClassLate) {
		t.Error("late production should be overlap-hostile")
	}
	if !OverlapFriendly(true, ClassLinear) || !OverlapFriendly(true, ClassEarly) {
		t.Error("linear/early production should be overlap-friendly")
	}
	// Consumption: early is hostile.
	if OverlapFriendly(false, ClassEarly) {
		t.Error("early consumption should be overlap-hostile")
	}
	if !OverlapFriendly(false, ClassLate) {
		t.Error("late consumption should be overlap-friendly")
	}
}

func TestClassifyDoesNotMutateInput(t *testing.T) {
	p := &Profile{Offsets: []int64{memory.Unread, 2000}, Burst: 1000}
	Classify(p)
	if p.Offsets[0] != memory.Unread || p.Offsets[1] != 2000 {
		t.Error("Classify mutated the input profile")
	}
}

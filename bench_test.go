// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per experiment row in DESIGN.md. Each iteration runs the
// complete experiment — trace (cached per suite), transform, replay sweep,
// table rendering — so `go test -bench=.` both measures the harness and
// proves every artifact regenerates. Component-level microbenchmarks live
// in the respective internal packages.
package overlapsim_test

import (
	"io"
	"testing"

	"overlapsim"
	"overlapsim/internal/experiment"
	"overlapsim/internal/overlap"
)

// benchSuite returns a suite for benchmarking: full paper workloads, with
// the tracing run shared across iterations of the same benchmark (the
// paper's methodology also traces once and replays many times).
func benchSuite() *experiment.Suite {
	return experiment.NewSuite()
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	s := benchSuite()
	// Prime the pipeline caches (the single instrumented run).
	d, err := experiment.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Run(s, io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Run(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Pipeline regenerates F1: the full trace -> Dimemas ->
// Paraver pipeline with the original/overlapped comparison.
func BenchmarkFig1Pipeline(b *testing.B) { runExperiment(b, "f1") }

// BenchmarkE1RealVsIdealPatterns regenerates finding 1: measured vs ideal
// computation patterns across the six applications.
func BenchmarkE1RealVsIdealPatterns(b *testing.B) { runExperiment(b, "e1") }

// BenchmarkE2SpeedupTable regenerates finding 2: the per-application
// speedup table at intermediate bandwidth.
func BenchmarkE2SpeedupTable(b *testing.B) { runExperiment(b, "e2") }

// BenchmarkE2fBandwidthSweep regenerates the implied per-app figure: the
// speedup-vs-bandwidth curves over the full grid.
func BenchmarkE2fBandwidthSweep(b *testing.B) { runExperiment(b, "e2f") }

// BenchmarkE3IsoPerformance regenerates finding 3: the iso-performance
// bandwidth-reduction table.
func BenchmarkE3IsoPerformance(b *testing.B) { runExperiment(b, "e3") }

// BenchmarkA1Mechanisms regenerates the mechanism-isolation ablation.
func BenchmarkA1Mechanisms(b *testing.B) { runExperiment(b, "a1") }

// BenchmarkA2ChunkGranularity regenerates the chunk-count ablation.
func BenchmarkA2ChunkGranularity(b *testing.B) { runExperiment(b, "a2") }

// BenchmarkA3NetworkModel regenerates the network-parameter ablation.
func BenchmarkA3NetworkModel(b *testing.B) { runExperiment(b, "a3") }

// BenchmarkB1AnalyticBaseline regenerates the analytic-vs-simulated
// comparison against the Sancho et al. model.
func BenchmarkB1AnalyticBaseline(b *testing.B) { runExperiment(b, "b1") }

// BenchmarkS1Scaling regenerates the process-grid scaling extension.
func BenchmarkS1Scaling(b *testing.B) { runExperiment(b, "s1") }

// BenchmarkTraceSweep3D measures the tracing-tool stage alone on the
// largest workload: one fully instrumented parallel run.
func BenchmarkTraceSweep3D(b *testing.B) {
	env := overlapsim.NewEnvironment()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		app, err := overlapsim.NewApp("sweep3d", overlapsim.AppConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := env.Trace(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayBT measures the Dimemas-like stage alone: replaying the
// BT trace on the default platform.
func BenchmarkReplayBT(b *testing.B) {
	env := overlapsim.NewEnvironment()
	app, err := overlapsim.NewApp("bt", overlapsim.AppConfig{})
	if err != nil {
		b.Fatal(err)
	}
	study, err := env.Trace(app)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.SimulateOriginal(env.Machine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransformBT measures the overlap transformation alone, building
// a fresh study per iteration group so the variant cache cannot hide the
// cost.
func BenchmarkTransformBT(b *testing.B) {
	env := overlapsim.NewEnvironment()
	app, err := overlapsim.NewApp("bt", overlapsim.AppConfig{})
	if err != nil {
		b.Fatal(err)
	}
	study, err := env.Trace(app)
	if err != nil {
		b.Fatal(err)
	}
	ps := study.Profiled
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := overlap.Transform(ps, overlap.Options{
			Mechanisms: overlap.BothMechanisms, Pattern: overlap.PatternLinear}); err != nil {
			b.Fatal(err)
		}
	}
}
